#include "sim/engine.hpp"

#include "obs/tracer.hpp"
#include "resil/resil.hpp"
#include "verify/oracle.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

// AddressSanitizer tracks the current stack's bounds; unannotated ucontext
// switches confuse it (e.g. __asan_handle_no_return during a throw pokes at
// the wrong stack). Every fiber switch is therefore bracketed with the
// sanitizer fiber API when ASan is on; plain builds compile it all away.
#if defined(__SANITIZE_ADDRESS__)
#define HIC_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HIC_ASAN_FIBERS 1
#endif
#endif
#ifdef HIC_ASAN_FIBERS
#include <pthread.h>
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer likewise needs every ucontext switch announced through its
// fiber API, or it reports phantom races between stack frames of different
// fibers. The annotations also give TSan the happens-before edge a fiber
// handoff implies. Plain builds compile it all away.
#if defined(__SANITIZE_THREAD__)
#define HIC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HIC_TSAN_FIBERS 1
#endif
#endif
#ifdef HIC_TSAN_FIBERS
#include <pthread.h>
#include <sanitizer/tsan_interface.h>
#endif

namespace hic {

namespace {
constexpr Cycle kNever = std::numeric_limits<Cycle>::max();
/// Per-fiber stack. Core bodies keep bulk data in simulated memory (gmem)
/// or on the heap; 1 MB leaves ample headroom for call depth + exceptions.
constexpr std::size_t kFiberStackBytes = 1 << 20;

/// Call right before switching away; `fake` is the leaving context's slot
/// (nullptr when the leaving fiber is dead and its fake stack can go).
inline void fiber_switch_start(void** fake, const void* target_bottom,
                               std::size_t target_size) {
#ifdef HIC_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake, target_bottom, target_size);
#else
  (void)fake;
  (void)target_bottom;
  (void)target_size;
#endif
}

/// Call first thing after control (re)enters a context; `fake` is the value
/// fiber_switch_start stored for this context (nullptr on first entry).
inline void fiber_switch_finish(void* fake) {
#ifdef HIC_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#else
  (void)fake;
#endif
}

// TSan fiber bookkeeping (no-ops / nullptr in plain builds).
inline void* tsan_current_fiber() {
#ifdef HIC_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

inline void* tsan_make_fiber() {
#ifdef HIC_TSAN_FIBERS
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

inline void tsan_free_fiber(void* f) {
#ifdef HIC_TSAN_FIBERS
  if (f != nullptr) __tsan_destroy_fiber(f);
#else
  (void)f;
#endif
}

/// Call right before switching to the context owning `f`.
inline void tsan_switch(void* f) {
#ifdef HIC_TSAN_FIBERS
  if (f != nullptr) __tsan_switch_to_fiber(f, 0);
#else
  (void)f;
#endif
}
}  // namespace

// ============================ Engine =========================================

Engine::Engine(HierarchyBase& hier, SyncController& sync, Cycle slack)
    : hier_(&hier), sync_(&sync), slack_(slack) {}

void Engine::run(std::vector<CoreBody> bodies) {
  HIC_CHECK(!bodies.empty());
  HIC_CHECK_MSG(static_cast<int>(bodies.size()) <=
                    hier_->config().total_cores(),
                "more bodies than cores");
  HIC_CHECK_MSG(!(legacy_ && shard_threads_req_ > 0),
                "--shard-threads is incompatible with the legacy scheduler "
                "(sharding builds on the direct-handoff fiber engine)");
  const auto& cfg = hier_->config();
  // Fail-stop injection pins the direct scheduler: the kill must land at the
  // exact operation boundary in the global dispatch order, and armed fault
  // plans force the sharded engine to serialize anyway. Loud, like the
  // sharded serialize fallback.
  if (shard_threads_req_ > 0 && fail_armed_) {
    std::fprintf(stderr,
                 "hicsim: fail-stop injection armed: ignoring --shard-threads "
                 "%d (chaos runs use the direct scheduler)\n",
                 shard_threads_req_);
  }
  const bool sharded = !legacy_ && shard_threads_req_ > 0 && !fail_armed_;
  ctxs_.clear();
  heap_.clear();
  abort_ = false;
  watchdog_tripped_ = false;
  shard_deadlock_ = false;
  shard_infra_error_ = nullptr;
  last_shard_count_ = 0;
  shard_serialize_ = false;
  shard_serialize_reason_.clear();
  oracle_overlap_ = false;
  bank_gates_.reset();
  bank_gate_count_ = 0;
  hang_report_ = HangReport{};
  main_tsan_fiber_ = tsan_current_fiber();
  // An abort teardown leaves one surplus post per released core; drain them
  // so a reused Engine starts from zero.
  while (engine_sem_.try_acquire()) {
  }
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    ctxs_.push_back(std::make_unique<CoreCtx>(
        static_cast<CoreId>(i), cfg.write_buffer_entries,
        cfg.write_buffer_drain_cycles));
    CoreCtx& c = *ctxs_.back();
    c.svc.eng_ = this;
    c.svc.id_ = c.id;
    c.wbuf.set_tracer(tracer_, c.id);
    c.fail_at = fail_cycle_of(c.id) == 0 ? kNever : fail_cycle_of(c.id);
    c.killed = false;
  }
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    CoreCtx& c = *ctxs_[i];
    c.body = std::move(bodies[i]);
    if (legacy_) {
      c.thr = std::thread([this, &c]() {
        c.go.acquire();
        if (!abort_) {
          try {
            c.body(c.svc);
          } catch (const AbortRun&) {
            // engine-initiated teardown
          } catch (const CoreKilled&) {
            // injected fail-stop: the victim halts, the run continues
          } catch (...) {
            // A failure inside a simulated core (e.g. a sync-misuse check)
            // must fail the run, not terminate the process. Abort the other
            // cores and hand the exception to run().
            c.error = std::current_exception();
            abort_ = true;
          }
        }
        c.state = CoreCtx::St::Finished;
        engine_sem_.release();
      });
    } else {
      c.stack.reset(new unsigned char[kFiberStackBytes]);
      c.tsan_fiber = tsan_make_fiber();
      HIC_CHECK(getcontext(&c.uctx) == 0);
      c.uctx.uc_stack.ss_sp = c.stack.get();
      c.uctx.uc_stack.ss_size = kFiberStackBytes;
      c.uctx.uc_link = nullptr;  // fibers exit via fiber_finish, never return
      const auto p = reinterpret_cast<std::uintptr_t>(&c);
      makecontext(&c.uctx,
                  reinterpret_cast<void (*)()>(&Engine::fiber_trampoline), 2,
                  static_cast<unsigned>(p >> 32),
                  static_cast<unsigned>(p & 0xffffffffu));
    }
  }

  bool deadlock = false;
  bool watchdog = false;
  if (legacy_) {
    for (;;) {
      if (abort_) break;  // a core's body threw: tear everything down
      CoreCtx* best = nullptr;
      Cycle second = kNever;
      int unfinished = 0;
      for (auto& up : ctxs_) {
        CoreCtx& c = *up;
        if (c.state == CoreCtx::St::Finished) continue;
        ++unfinished;
        if (c.state != CoreCtx::St::Ready) continue;
        if (best == nullptr || c.time < best->time) {
          if (best != nullptr) second = std::min(second, best->time);
          best = &c;
        } else {
          second = std::min(second, c.time);
        }
      }
      if (unfinished == 0) break;
      if (best == nullptr) {
        // Global stall: blocked cores with a pending fail-stop will never be
        // woken — revive them so they self-kill, then rescan (the legacy
        // loop re-reads states, so no ready-queue surgery is needed).
        if (revive_fail_victims()) continue;
        deadlock = true;
        break;
      }
      if (max_cycles_ != 0 && best->time > max_cycles_) {
        // Even the earliest runnable core is past the limit: livelock.
        watchdog = true;
        break;
      }
      best->run_until =
          second == kNever ? kNever : second + slack_;
      // With a watchdog armed, cap the quantum so a core spinning forever
      // still yields and lets the check above fire.
      if (max_cycles_ != 0)
        best->run_until = std::min(best->run_until, max_cycles_ + 1);
      running_ = best;
      best->go.release();
      engine_sem_.acquire();
      running_ = nullptr;
    }
  } else if (sharded) {
    // Sharded: worker threads dispatch, run and tear down their own
    // partitions; control returns with the outcome flags set.
    run_sharded();
    deadlock = shard_deadlock_;
    watchdog = watchdog_tripped_;
  } else {
    // Direct handoff: seed the ready heap and swap into the earliest core's
    // fiber. Fibers hand the CPU to each other in user space; control
    // returns here only when nothing is dispatchable (finish, deadlock,
    // watchdog, abort).
    heap_.reserve(ctxs_.size());
    for (auto& up : ctxs_) push_ready(*up);
#ifdef HIC_ASAN_FIBERS
    {  // ASan needs this thread's stack bounds to annotate switches back.
      pthread_attr_t attr;
      pthread_getattr_np(pthread_self(), &attr);
      void* addr = nullptr;
      std::size_t size = 0;
      pthread_attr_getstack(&attr, &addr, &size);
      pthread_attr_destroy(&attr);
      main_stack_bottom_ = addr;
      main_stack_size_ = size;
    }
#endif
    for (;;) {
      CoreCtx* first = pick_next();
      if (first != nullptr) {
        running_ = first;
        tsan_switch(first->tsan_fiber);
        fiber_switch_start(&main_asan_fake_, first->stack.get(),
                           kFiberStackBytes);
        swapcontext(&main_ctx_, &first->uctx);
        fiber_switch_finish(main_asan_fake_);
        running_ = nullptr;
      }
      watchdog = watchdog_tripped_ && !abort_;
      if (!abort_ && !watchdog) {
        int unfinished = 0;
        for (auto& up : ctxs_)
          if (up->state != CoreCtx::St::Finished) ++unfinished;
        deadlock = unfinished > 0;
      }
      // A would-be deadlock with fail-stop victims still pending is not a
      // hang: their wake will never come. Make them Ready so the next
      // dispatch round lets each one self-kill at its fail cycle.
      if (deadlock && revive_fail_victims()) {
        deadlock = false;
        continue;
      }
      break;
    }
  }

  // Sharded runs snapshot their hang report at detection time and unwind
  // their fibers on the owning workers; the blocks below are the
  // single-thread paths' equivalents.
  if ((deadlock || watchdog) && !sharded) {
    // Snapshot the diagnosis *before* teardown: releasing parked threads
    // lets them run to Finished, destroying the blocked states below.
    Cycle at = 0;
    for (auto& up : ctxs_) at = std::max(at, up->time);
    hang_report_ = build_hang_report(
        deadlock ? HangReport::Kind::Deadlock : HangReport::Kind::Watchdog,
        at);
  }
  if ((deadlock || watchdog || abort_) && !sharded) {
    abort_ = true;
    if (legacy_) {
      // Release every parked thread so it can observe abort_ and exit.
      for (auto& up : ctxs_) {
        if (up->state != CoreCtx::St::Finished) up->go.release();
      }
    } else {
      // Resume every parked fiber once so its body unwinds (the pending
      // yield throws AbortRun); never-started fibers skip the body and
      // finish immediately. Each comes straight back here via fiber_finish.
      for (auto& up : ctxs_) {
        if (up->state != CoreCtx::St::Finished) {
          tsan_switch(up->tsan_fiber);
          fiber_switch_start(&main_asan_fake_, up->stack.get(),
                             kFiberStackBytes);
          swapcontext(&main_ctx_, &up->uctx);
          fiber_switch_finish(main_asan_fake_);
        }
      }
    }
  }
  for (auto& up : ctxs_) {
    if (up->thr.joinable()) up->thr.join();
  }
  for (auto& up : ctxs_) {
    tsan_free_fiber(up->tsan_fiber);
    up->tsan_fiber = nullptr;
  }
  finish_time_ = 0;
  for (auto& up : ctxs_) finish_time_ = std::max(finish_time_, up->time);
  // Execution provenance for the stats JSON ("shard" object, schema v4):
  // host-side only — simulated counters are identical across modes.
  stats().set_shard_exec(
      {shard_threads_req_, last_shard_count_, shard_serialize_});
  // A workload failure outranks the hang report (it usually caused it).
  for (auto& up : ctxs_) {
    if (up->error) std::rethrow_exception(up->error);
  }
  if (shard_infra_error_) std::rethrow_exception(shard_infra_error_);
  if (deadlock || watchdog) throw CheckFailure(hang_report_.render());
}

HangReport Engine::build_hang_report(HangReport::Kind kind, Cycle at) const {
  HangReport r;
  r.kind = kind;
  r.at_cycle = at;
  r.max_cycles = max_cycles_;
  for (const auto& up : ctxs_) {
    const CoreCtx& c = *up;
    HangReport::CoreDump d;
    d.core = c.id;
    d.clock = c.time;
    switch (c.state) {
      case CoreCtx::St::Ready: d.state = "ready"; break;
      case CoreCtx::St::Blocked: d.state = "blocked"; break;
      case CoreCtx::St::Finished: d.state = "finished"; break;
    }
    if (c.killed) {
      d.state = "killed (injected fail-stop)";
      r.victims.push_back({c.id, c.fail_at});
    }
    if (c.state == CoreCtx::St::Blocked && c.blocked_on >= 0) {
      d.blocked_on = c.blocked_on;
      switch (sync_->kind_of(c.blocked_on)) {
        case SyncKind::Barrier: d.blocked_kind = "barrier"; break;
        case SyncKind::Lock: d.blocked_kind = "lock"; break;
        case SyncKind::Flag: d.blocked_kind = "flag"; break;
      }
    }
    d.wbuf_pending = c.wbuf.pending(c.time);
    d.recent = c.ring.events();
    r.cores.push_back(std::move(d));

    // Wait-for edges out of this core.
    if (c.state != CoreCtx::St::Blocked || c.blocked_on < 0) continue;
    const SyncId id = c.blocked_on;
    std::ostringstream why;
    switch (sync_->kind_of(id)) {
      case SyncKind::Lock: {
        const auto holder = sync_->lock_holder_of(id);
        if (holder.has_value()) {
          why << "lock #" << id << " held by core " << *holder;
          r.edges.push_back({c.id, *holder, id, why.str()});
        }
        break;
      }
      case SyncKind::Barrier: {
        // The core waits for every participant that has not yet arrived:
        // any unfinished core not parked at this barrier.
        why << "barrier #" << id << " ("
            << sync_->barrier_arrived(id) << '/'
            << sync_->barrier_participants(id) << " arrived)";
        for (const auto& other : ctxs_) {
          const CoreCtx& o = *other;
          if (o.id == c.id) continue;
          // A killed participant will never arrive: surface that edge with
          // the victim diagnosis instead of hiding it as "finished".
          if (o.state == CoreCtx::St::Finished && !o.killed) continue;
          if (o.state == CoreCtx::St::Blocked && o.blocked_on == id) continue;
          std::string w = why.str();
          if (o.killed)
            w += "; core " + std::to_string(o.id) +
                 " is a victim of injected failure";
          r.edges.push_back({c.id, o.id, id, std::move(w)});
        }
        break;
      }
      case SyncKind::Flag:
        // A flag set can come from any core (or never): no edge.
        break;
    }
  }
  r.detect_cycle();
  return r;
}

void Engine::charge(CoreCtx& c, StallKind k, Cycle cycles) {
  if (cycles == 0) return;
  const Cycle start = c.time;
  c.time += cycles;
  // Publish the live clock: other shards' dispatch decisions and skew gates
  // read it lock-free.
  if (sharded_active_)
    runners_[c.shard].clock.store(c.time, std::memory_order_release);
  stats().stalls(c.id).add(k, cycles);
  if (tracer_ != nullptr) {
    tracer_->stall(c.id, start, c.time, k);
    tracer_->maybe_sample(c.time);
  }
}

void Engine::push_ready(CoreCtx& c) {
  heap_.emplace_back(c.time, c.id);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  if (sharded_active_) shard_publish_top_locked();
}

Engine::CoreCtx* Engine::pick_next() {
  if (heap_.empty()) return nullptr;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  CoreCtx* best = &ctx(heap_.back().second);
  heap_.pop_back();
  if (max_cycles_ != 0 && best->time > max_cycles_) {
    // Even the earliest runnable core is past the limit: livelock. Put it
    // back so the hang report sees it as ready, and hand back to run().
    push_ready(*best);
    watchdog_tripped_ = true;
    return nullptr;
  }
  // The dispatch of the globally earliest core is the engine's serialized
  // deterministic point: drive the ECC scrubber's clock from it.
  if (resil_ != nullptr) resil_->on_dispatch(best->time);
  const Cycle second = heap_.empty() ? kNever : heap_.front().first;
  best->run_until = second == kNever ? kNever : second + slack_;
  // With a watchdog armed, cap the quantum so a core spinning forever
  // still yields and lets the check above fire.
  if (max_cycles_ != 0)
    best->run_until = std::min(best->run_until, max_cycles_ + 1);
  return best;
}

void Engine::relinquish(CoreCtx& c) {
  if (c.state == CoreCtx::St::Ready) push_ready(c);
  CoreCtx* next = pick_next();
  if (next == &c) return;  // re-picked itself: zero context switches
  running_ = next;
  // Park this fiber inside the swap; it resumes right here when another
  // fiber (or the teardown loop) dispatches it again.
  tsan_switch(next != nullptr ? next->tsan_fiber : main_tsan_fiber_);
  if (next != nullptr)
    fiber_switch_start(&c.asan_fake, next->stack.get(), kFiberStackBytes);
  else
    fiber_switch_start(&c.asan_fake, main_stack_bottom_, main_stack_size_);
  swapcontext(&c.uctx, next != nullptr ? &next->uctx : &main_ctx_);
  fiber_switch_finish(c.asan_fake);
}

void Engine::fiber_trampoline(unsigned hi, unsigned lo) {
  fiber_switch_finish(nullptr);  // first entry: nothing saved for this stack
  auto* c = reinterpret_cast<CoreCtx*>((static_cast<std::uintptr_t>(hi) << 32) |
                                       static_cast<std::uintptr_t>(lo));
  Engine* eng = c->svc.eng_;
  if (!eng->abort_) {
    try {
      c->body(c->svc);
    } catch (const AbortRun&) {
      // engine-initiated teardown
    } catch (const CoreKilled&) {
      // injected fail-stop: the victim halts, the run continues
    } catch (...) {
      // A failure inside a simulated core (e.g. a sync-misuse check) must
      // fail the run, not terminate the process. Abort the other cores and
      // hand the exception to run().
      c->error = std::current_exception();
      eng->abort_ = true;
    }
  }
  c->state = CoreCtx::St::Finished;
  eng->fiber_finish(*c);
}

void Engine::fiber_finish(CoreCtx& c) {
  if (sharded_active_) {
    // Retire the quantum and hand the CPU back to the owning shard's
    // worker loop. setcontext (not swap): this fiber is dead. As in
    // relinquish_sharded, the oracle buffer must be enqueued before the
    // runner slot goes idle.
    if (oracle_overlap_) oracle_->quantum_end();
    {
      std::lock_guard<std::mutex> lk(shard_mu_);
      shard_end_quantum_locked(c);
    }
    ShardCtx& s = *shardctx_[static_cast<std::size_t>(c.shard)];
    tsan_switch(s.tsan_fiber);
    fiber_switch_start(nullptr, s.stack_bottom, s.stack_size);
    setcontext(&s.main);
    std::abort();  // setcontext returns only on error
  }
  // During an abort teardown run() owns dispatching; otherwise hand the CPU
  // to the next ready core. setcontext (not swap): this fiber is dead.
  CoreCtx* next = abort_ ? nullptr : pick_next();
  running_ = next;
  tsan_switch(next != nullptr ? next->tsan_fiber : main_tsan_fiber_);
  // nullptr slot: this fiber never resumes, so ASan frees its fake stack.
  if (next != nullptr)
    fiber_switch_start(nullptr, next->stack.get(), kFiberStackBytes);
  else
    fiber_switch_start(nullptr, main_stack_bottom_, main_stack_size_);
  setcontext(next != nullptr ? &next->uctx : &main_ctx_);
  std::abort();  // setcontext returns only on error
}

void Engine::yield(CoreCtx& c) {
  if (legacy_) {
    engine_sem_.release();
    c.go.acquire();
  } else if (sharded_active_) {
    relinquish_sharded(c);
  } else {
    relinquish(c);
  }
  if (abort_) throw AbortRun{};
  // A core woken past its fail cycle dies here, before the op that parked it
  // resumes (e.g. before a woken lock() runs its acquire hooks) — the sync
  // cleanup in fail_check then passes the just-granted lock on consistently.
  fail_point(c);
}

void Engine::maybe_yield(CoreCtx& c) {
  if (sharded_active_) {
    if (c.time >= c.aru.load(std::memory_order_acquire)) yield(c);
  } else if (c.time >= c.run_until) {
    yield(c);
  }
}

void Engine::block(CoreCtx& c, StallKind k, SyncId on) {
  c.state = CoreCtx::St::Blocked;
  c.block_start = c.time;
  c.block_kind = k;
  c.blocked_on = on;
  yield(c);
  HIC_DCHECK(c.state == CoreCtx::St::Ready);
  c.blocked_on = -1;
  stats().stalls(c.id).add(k, c.time - c.block_start);
  if (tracer_ != nullptr) {
    tracer_->stall(c.id, c.block_start, c.time, k);
    tracer_->maybe_sample(c.time);
  }
}

void Engine::wake(CoreCtx& waker, CoreId target, Cycle at) {
  CoreCtx& t = ctx(target);
  HIC_CHECK_MSG(t.state == CoreCtx::St::Blocked,
                "woke core " << target << " that is not blocked");
  t.state = CoreCtx::St::Ready;
  t.time = std::max(t.time, at);
  if (sharded_active_) {
    // A heap insertion below running quanta's horizons: enter the heap and
    // patch — the waker itself (the direct scheduler's running core) and
    // every quantum dispatched after it.
    std::lock_guard<std::mutex> lk(shard_mu_);
    push_ready(t);
    const Cycle nu = t.time + slack_;
    Cycle cur = waker.aru.load(std::memory_order_relaxed);
    while (nu < cur && !waker.aru.compare_exchange_weak(
                           cur, nu, std::memory_order_release,
                           std::memory_order_relaxed)) {
    }
    shard_patch_locked(waker.seq, t.time);
    if (cv_waiters_ > 0) shard_cv_.notify_all();
    return;
  }
  if (!legacy_) push_ready(t);
  // The waker's quantum was computed while `target` was blocked; shrink it
  // so the newly runnable core gets scheduled at the right time instead of
  // the waker running arbitrarily far ahead.
  if (running_ != nullptr && t.time + slack_ < running_->run_until)
    running_->run_until = t.time + slack_;
}

void Engine::set_fail_cycles(std::vector<Cycle> cycles) {
  fail_cycles_ = std::move(cycles);
  fail_armed_ = std::any_of(fail_cycles_.begin(), fail_cycles_.end(),
                            [](Cycle c) { return c != 0; });
}

void Engine::fail_check(CoreCtx& c) {
  c.killed = true;
  // The callback runs on the victim's fiber, before sync cleanup: the
  // Machine records the fault and discards the victim's dirty lines while
  // its caches are still untouched by anyone else.
  if (fail_cb_) fail_cb_(c.id, c.fail_at);
  // Held locks pass to their FIFO successors at the victim's death time,
  // so the handoff is as deterministic as a normal unlock.
  const auto granted = sync_->on_core_failed(c.id);
  for (CoreId g : granted) wake(c, g, c.time);
  throw CoreKilled{};
}

bool Engine::revive_fail_victims() {
  bool any = false;
  for (auto& up : ctxs_) {
    CoreCtx& c = *up;
    if (c.state != CoreCtx::St::Blocked || c.killed || c.fail_at == kNever)
      continue;
    // The wake it blocks on will never come; advance it to its fail cycle
    // and let the next dispatch round run it straight into fail_check.
    c.state = CoreCtx::St::Ready;
    c.time = std::max(c.time, c.fail_at);
    if (!legacy_) push_ready(c);
    any = true;
  }
  return any;
}

void Engine::drain(CoreCtx& c) {
  const auto wait = c.wbuf.drain_wait(c.time);
  charge(c, StallKind::WbStall, wait.wb_wait);
  charge(c, StallKind::InvStall, wait.inv_wait);
  c.wbuf.retire_until(c.time);
}

Cycle Engine::sync_latency(const CoreCtx& c, SyncId id) const {
  const auto& topo = hier_->topology();
  return topo.round_trip(topo.core_node(c.id), sync_->home_of(id)) +
         SyncController::kServiceCycles;
}

void Engine::count_sync_traffic() {
  stats().traffic().add(TrafficKind::Sync,
                        2 * hier_->topology().control_flits());
}

void Engine::trace_ctx(const CoreCtx& c) {
  if (tracer_ != nullptr) tracer_->set_context(c.id, c.time);
}

void Engine::trace_op(const CoreCtx& c, Cycle start, const char* name) {
  if (tracer_ != nullptr)
    tracer_->span(TraceCat::Op, c.id, start, c.time, name);
}

void Engine::trace_op(const CoreCtx& c, Cycle start, const char* name,
                      std::int64_t arg) {
  if (tracer_ != nullptr)
    tracer_->span(TraceCat::Op, c.id, start, c.time, name, arg);
}

void Engine::trace_sync(const CoreCtx& c, Cycle start, const char* name,
                        SyncId id) {
  if (tracer_ != nullptr)
    tracer_->span(TraceCat::Sync, c.id, start, c.time, name, id);
}

// ======================== CoreServices ========================================

Cycle CoreServices::now() const { return eng_->ctx(id_).time; }

HierarchyBase& CoreServices::hierarchy() { return eng_->hierarchy(); }
SimStats& CoreServices::stats() { return eng_->stats(); }

void CoreServices::compute(Cycle cycles) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Compute);
  eng_->charge(c, StallKind::Rest, cycles);
  eng_->maybe_yield(c);
}

AccessOutcome CoreServices::load(Addr a, std::uint32_t bytes, void* out) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  const Addr line = align_down(a, eng_->hierarchy().config().l1.line_bytes);
  c.ring.push(c.time, CoreEventKind::Load, static_cast<std::int64_t>(a));
  c.wbuf.retire_until(c.time);
  // Loads never bypass a pending INV to the same line (§III-C).
  eng_->charge(c, StallKind::InvStall, c.wbuf.inv_wait(c.time, line));
  eng_->trace_ctx(c);
  const AccessOutcome r = eng_->hierarchy().read(id_, a, bytes, out);
  eng_->charge(c, StallKind::Rest, r.latency - r.inv_penalty);
  eng_->charge(c, StallKind::InvStall, r.inv_penalty);
  eng_->maybe_yield(c);
  return r;
}

AccessOutcome CoreServices::store(Addr a, std::uint32_t bytes,
                                  const void* in) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  const Addr line = align_down(a, eng_->hierarchy().config().l1.line_bytes);
  c.ring.push(c.time, CoreEventKind::Store, static_cast<std::int64_t>(a));
  eng_->trace_ctx(c);
  const AccessOutcome r = eng_->hierarchy().write(id_, a, bytes, in);
  // The store retires into the write buffer: the core pays one issue cycle
  // (plus a full-buffer stall); the service time drains in the background.
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Store, line,
      r.l1_hit ? eng_->hierarchy().config().write_buffer_drain_cycles
               : r.latency);
  eng_->charge(c, StallKind::Rest, 1 + stall);
  eng_->maybe_yield(c);
  return r;
}

void CoreServices::wb_range(AddrRange r, Level to) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Wb, static_cast<std::int64_t>(r.base));
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().wb_range(id_, r, to);
  const Cycle stall =
      c.wbuf.issue(c.time, WbEntryKind::Wb, WriteBufferModel::kAllLines,
                   service);
  eng_->charge(c, StallKind::WbStall, 1 + stall);
  eng_->trace_op(c, start, "wb_range", static_cast<std::int64_t>(r.base));
  eng_->maybe_yield(c);
}

void CoreServices::wb_all(Level to) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Wb);
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().wb_all(id_, to);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Wb, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::WbStall, 1 + stall);
  eng_->trace_op(c, start, "wb_all");
  eng_->maybe_yield(c);
}

void CoreServices::inv_range(AddrRange r, Level from) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Inv, static_cast<std::int64_t>(r.base));
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().inv_range(id_, r, from);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Inv, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::InvStall, 1 + stall);
  eng_->trace_op(c, start, "inv_range", static_cast<std::int64_t>(r.base));
  eng_->maybe_yield(c);
}

void CoreServices::inv_all(Level from) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Inv);
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().inv_all(id_, from);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Inv, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::InvStall, 1 + stall);
  eng_->trace_op(c, start, "inv_all");
  eng_->maybe_yield(c);
}

void CoreServices::wb_cons(AddrRange r, ThreadId consumer) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Wb, static_cast<std::int64_t>(r.base));
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().wb_cons(id_, r, consumer);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Wb, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::WbStall, 1 + stall);
  eng_->trace_op(c, start, "wb_cons", static_cast<std::int64_t>(r.base));
  eng_->maybe_yield(c);
}

void CoreServices::wb_cons_all(ThreadId consumer) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Wb);
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().wb_cons_all(id_, consumer);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Wb, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::WbStall, 1 + stall);
  eng_->trace_op(c, start, "wb_cons_all");
  eng_->maybe_yield(c);
}

void CoreServices::inv_prod(AddrRange r, ThreadId producer) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Inv, static_cast<std::int64_t>(r.base));
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().inv_prod(id_, r, producer);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Inv, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::InvStall, 1 + stall);
  eng_->trace_op(c, start, "inv_prod", static_cast<std::int64_t>(r.base));
  eng_->maybe_yield(c);
}

void CoreServices::inv_prod_all(ThreadId producer) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Inv);
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().inv_prod_all(id_, producer);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Inv, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::InvStall, 1 + stall);
  eng_->trace_op(c, start, "inv_prod_all");
  eng_->maybe_yield(c);
}

void CoreServices::cs_enter() {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::CsEnter);
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().cs_enter(id_);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Inv, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::InvStall, 1 + stall);
  eng_->trace_op(c, start, "cs_enter");
  eng_->maybe_yield(c);
}

void CoreServices::cs_exit() {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::CsExit);
  const Cycle start = c.time;
  eng_->trace_ctx(c);
  const Cycle service = eng_->hierarchy().cs_exit(id_);
  const Cycle stall = c.wbuf.issue(
      c.time, WbEntryKind::Wb, WriteBufferModel::kAllLines, service);
  eng_->charge(c, StallKind::WbStall, 1 + stall);
  eng_->trace_op(c, start, "cs_exit");
  eng_->maybe_yield(c);
}

void CoreServices::drain_write_buffer() {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_gate(c);
  c.ring.push(c.time, CoreEventKind::Drain);
  const Cycle start = c.time;
  eng_->drain(c);
  eng_->trace_op(c, start, "drain");
  eng_->maybe_yield(c);
}

void CoreServices::dma_copy(BlockId src_block, Addr src, BlockId dst_block,
                            Addr dst, std::uint64_t bytes) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  // A DMA mutates a remote block's L2 behind the owning shard's back; only
  // the serialized sharded mode (one quantum at a time) can replay it
  // exactly. No workload in the suite combines DMA with parallel sharding.
  HIC_CHECK_MSG(!eng_->sharded_active_ || eng_->shard_serialize_,
                "dma_copy is not supported in parallel sharded mode; "
                "run with --shard-threads 1 or without sharding");
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::Dma, static_cast<std::int64_t>(src));
  const Cycle start = c.time;
  // The initiator's prior writebacks must be out before the DMA reads the
  // source (the DMA engine reads the shared level).
  eng_->drain(c);
  const Cycle lat =
      eng_->hierarchy().dma_copy(src_block, src, dst_block, dst, bytes);
  // After the hierarchy moved the data (its fill hooks ran), stamp the
  // transfer: the source words are checked for staleness, the destination
  // words become writes by the initiating core.
  if (auto* o = eng_->oracle())
    o->on_dma(id_, src_block, src, dst_block, dst, bytes);
  eng_->charge(c, StallKind::Rest, lat);
  eng_->trace_op(c, start, "dma_copy", static_cast<std::int64_t>(src));
  eng_->maybe_yield(c);
}

// --- Synchronization -----------------------------------------------------------

void CoreServices::barrier(SyncId id) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  // Overlapped verification: the inline hooks below mutate shared oracle
  // state, so the shadow must first catch up to this quantum's position in
  // the serial order (no memory events occur between here and the hooks).
  eng_->oracle_sync_point(c);
  c.ring.push(c.time, CoreEventKind::Barrier, id);
  const Cycle start = c.time;
  eng_->drain(c);  // a barrier is a release point: posted data must be out
  eng_->charge(c, StallKind::BarrierStall, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  auto released = eng_->sync().barrier_arrive(id, id_);
  // Arrival releases this core's history into the barrier's clock; when the
  // last arriver completes it, every released core acquires the join (the
  // barrier is a full happens-before fence between rounds).
  if (auto* o = eng_->oracle()) {
    o->on_barrier_arrive(id_, id);
    if (released.has_value()) o->on_barrier_complete(id, *released);
  }
  if (!released.has_value()) {
    eng_->block(c, StallKind::BarrierStall, id);
  } else {
    const auto& topo = eng_->hierarchy().topology();
    const NodeId home = eng_->sync().home_of(id);
    for (CoreId w : *released) {
      if (w == id_) continue;
      eng_->wake(c, w, c.time + topo.latency(home, topo.core_node(w)));
    }
  }
  eng_->trace_sync(c, start, "barrier", id);
  eng_->maybe_yield(c);
}

void CoreServices::lock(SyncId id) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::Lock, id);
  const Cycle start = c.time;
  eng_->charge(c, StallKind::LockStall, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  if (!eng_->sync().lock_acquire(id, id_)) {
    eng_->block(c, StallKind::LockStall, id);
    // Woken in a fresh quantum: the acquire hook below needs oldest-active
    // status re-established, not just the op-entry gate above.
    eng_->oracle_resume_sync(c);
  } else {
    eng_->oracle_sync_point(c);
  }
  // After the grant (immediate or woken): the previous holder's release has
  // already merged its clock into the lock, so the acquire sees it.
  if (auto* o = eng_->oracle()) o->on_lock_acquire(id_, id);
  eng_->trace_sync(c, start, "lock", id);
  eng_->maybe_yield(c);
}

void CoreServices::unlock(SyncId id) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::Unlock, id);
  const Cycle start = c.time;
  eng_->drain(c);  // release semantics: critical-section WBs must complete
  eng_->charge(c, StallKind::Rest, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  eng_->oracle_sync_point(c);
  if (auto* o = eng_->oracle()) o->on_lock_release(id_, id);
  const auto next = eng_->sync().lock_release(id, id_);
  if (next.has_value()) {
    const auto& topo = eng_->hierarchy().topology();
    const NodeId home = eng_->sync().home_of(id);
    eng_->wake(c, *next, c.time + topo.latency(home, topo.core_node(*next)));
  }
  eng_->trace_sync(c, start, "unlock", id);
  eng_->maybe_yield(c);
}

void CoreServices::flag_wait(SyncId id, std::uint64_t expect) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::FlagWait, id);
  const Cycle start = c.time;
  eng_->charge(c, StallKind::BarrierStall, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  if (!eng_->sync().flag_check(id, id_, expect)) {
    eng_->block(c, StallKind::BarrierStall, id);
    // Woken in a fresh quantum (see lock()).
    eng_->oracle_resume_sync(c);
  } else {
    eng_->oracle_sync_point(c);
  }
  // After the unblock: the setter's release already reached the flag clock.
  if (auto* o = eng_->oracle()) o->on_flag_wait(id_, id);
  eng_->trace_sync(c, start, "flag_wait", id);
  eng_->maybe_yield(c);
}

void CoreServices::flag_set(SyncId id, std::uint64_t value) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::FlagSet, id);
  const Cycle start = c.time;
  eng_->drain(c);  // the flag publishes data: WBs must be out first
  eng_->charge(c, StallKind::Rest, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  eng_->oracle_sync_point(c);
  if (auto* o = eng_->oracle()) o->on_flag_set(id_, id);
  const auto released = eng_->sync().flag_set(id, value);
  const auto& topo = eng_->hierarchy().topology();
  const NodeId home = eng_->sync().home_of(id);
  for (CoreId w : released)
    eng_->wake(c, w, c.time + topo.latency(home, topo.core_node(w)));
  eng_->trace_sync(c, start, "flag_set", id);
  eng_->maybe_yield(c);
}

void CoreServices::oracle_mark_racy() {
  // Racy accesses are the one annotation class whose outcome (the staleness
  // monitor's verdict, the oracle's race accounting) depends on cross-core
  // access order. Serializing them on global dispatch order makes that order
  // — and therefore every counter — identical to the single-thread engine.
  eng_->fail_point(eng_->ctx(id_));
  eng_->shard_order_gate(eng_->ctx(id_));
  if (auto* o = eng_->oracle()) o->mark_racy_next(id_);
}

std::uint64_t CoreServices::flag_add(SyncId id, std::uint64_t delta) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::FlagAdd, id);
  const Cycle start = c.time;
  eng_->drain(c);
  eng_->charge(c, StallKind::Rest, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  // A fetch-add is both an acquire (it observes prior adders/setters) and a
  // release (later waiters observe it).
  eng_->oracle_sync_point(c);
  if (auto* o = eng_->oracle()) o->on_flag_add(id_, id);
  std::uint64_t v = 0;
  const auto released = eng_->sync().flag_add(id, delta, &v);
  const auto& topo = eng_->hierarchy().topology();
  const NodeId home = eng_->sync().home_of(id);
  for (CoreId w : released)
    eng_->wake(c, w, c.time + topo.latency(home, topo.core_node(w)));
  eng_->trace_sync(c, start, "flag_add", id);
  eng_->maybe_yield(c);
  return v;
}

bool CoreServices::try_lock(SyncId id) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::Lock, id);
  const Cycle start = c.time;
  // Win or lose, the request is a full round trip to the controller.
  eng_->charge(c, StallKind::LockStall, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  const bool got = eng_->sync().lock_try_acquire(id, id_);
  if (got) {
    eng_->oracle_sync_point(c);
    // Same acquire edge as a blocking lock(): the previous holder's release
    // already merged its clock into the lock.
    if (auto* o = eng_->oracle()) o->on_lock_acquire(id_, id);
  }
  eng_->trace_sync(c, start, "try_lock", id);
  eng_->maybe_yield(c);
  return got;
}

std::uint64_t CoreServices::flag_peek(SyncId id) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::FlagWait, id);
  const Cycle start = c.time;
  eng_->charge(c, StallKind::BarrierStall, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  // Polling read: no waiter registered, no happens-before edge established.
  const std::uint64_t v = eng_->sync().flag_value(id);
  eng_->trace_sync(c, start, "flag_peek", id);
  eng_->maybe_yield(c);
  return v;
}

bool CoreServices::flag_try_wait(SyncId id, std::uint64_t expect) {
  auto& c = eng_->ctx(id_);
  eng_->fail_point(c);
  eng_->shard_order_gate(c);
  c.ring.push(c.time, CoreEventKind::FlagWait, id);
  const Cycle start = c.time;
  eng_->charge(c, StallKind::BarrierStall, eng_->sync_latency(c, id));
  eng_->count_sync_traffic();
  const bool ok = eng_->sync().flag_value(id) >= expect;
  if (ok) {
    eng_->oracle_sync_point(c);
    // The satisfied wait acquires exactly as flag_wait's success path does.
    if (auto* o = eng_->oracle()) o->on_flag_wait(id_, id);
  }
  eng_->trace_sync(c, start, "flag_try_wait", id);
  eng_->maybe_yield(c);
  return ok;
}

}  // namespace hic
