// Sharded execution: the direct-handoff scheduler's quantum sequence,
// replayed across host worker threads.
//
// The machine is partitioned by block (cores of a block share an L2, so a
// block is the natural unit); each partition's fibers are pinned to one
// worker thread. Workers pull quanta from the same (time, core-id) min-heap
// the single-thread scheduler uses, under one rule that makes the replay
// exact rather than merely deterministic:
//
//   A quantum may be dispatched only when every currently running quantum's
//   live clock is strictly past the heap top. Any entry a running quantum
//   later inserts (a yield rejoin, a wake) lands at or after its clock —
//   strictly above the top — so the top is provably the quantum the
//   single-thread scheduler would dispatch next.
//
// Two lock-free gates keep concurrently running quanta honest about the
// horizon (run_until) the single-thread scheduler would have armed:
//
//   - the skew gate (every op start): an earlier-dispatched quantum at clock
//     m can still insert a heap entry at >= m, which would have capped this
//     quantum's horizon at m + slack. The gate waits until the current time
//     is below that bound; the patch rule (below) delivers the actual caps.
//   - the order gate (sync ops, L3/DRAM touches, declared-racy accesses):
//     waits until every earlier-dispatched quantum has retired, so
//     operations on machine-global state execute exactly in the
//     single-thread dispatch order, one at a time.
//
// The patch rule: when quantum s inserts a heap entry at time T, it
// CAS-shrinks the horizon of every running quantum with seq > s to
// T + slack — the single-thread scheduler had that entry in the heap when it
// armed those quanta, so their run_until would have seen it.
//
// Order-sensitive observers (tracer, oracle, recovery manager, armed fault
// plan) and the coherent baseline force serialize mode: one quantum at a
// time, still on the shard workers. The replay is then trivially exact.
//
// Stats: each worker accumulates global counters into a private StatsLane
// (routed via a thread-local in SimStats); lanes are folded into the main
// account in shard order after the join. Sums commute, so totals are
// byte-identical to a single-thread run. See docs/performance.md.
#include "sim/engine.hpp"

#include "fault/fault_plan.hpp"
#include "resil/resil.hpp"
#include "verify/oracle.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <thread>

#if defined(__SANITIZE_ADDRESS__)
#define HIC_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HIC_ASAN_FIBERS 1
#endif
#endif
#ifdef HIC_ASAN_FIBERS
#include <pthread.h>
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define HIC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HIC_TSAN_FIBERS 1
#endif
#endif
#ifdef HIC_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace hic {

namespace {
constexpr Cycle kNever = std::numeric_limits<Cycle>::max();
constexpr std::size_t kFiberStackBytes = 1 << 20;
/// Gate spins between runner-slot rescans before backing off to the OS.
constexpr int kGateSpins = 64;
/// Idle-worker spins on the lock-free dispatch hint before a cv nap.
/// Quanta are ~slack cycles (microseconds of host time); sleeping through
/// a dispatch window costs far more than burning these polls.
constexpr int kDispatchSpins = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

inline void fiber_switch_start(void** fake, const void* target_bottom,
                               std::size_t target_size) {
#ifdef HIC_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake, target_bottom, target_size);
#else
  (void)fake;
  (void)target_bottom;
  (void)target_size;
#endif
}

inline void fiber_switch_finish(void* fake) {
#ifdef HIC_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#else
  (void)fake;
#endif
}

inline void* tsan_current_fiber() {
#ifdef HIC_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

inline void tsan_switch(void* f) {
#ifdef HIC_TSAN_FIBERS
  if (f != nullptr) __tsan_switch_to_fiber(f, 0);
#else
  (void)f;
#endif
}

/// CAS-min on an atomic horizon.
inline void horizon_shrink(std::atomic<Cycle>& aru, Cycle nu) {
  Cycle cur = aru.load(std::memory_order_relaxed);
  while (nu < cur && !aru.compare_exchange_weak(cur, nu,
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {
  }
}
}  // namespace

void Engine::run_sharded() {
  const auto& cfg = hier_->config();
  const int n = static_cast<int>(ctxs_.size());
  // A shard owns whole blocks (a block's cores share an L2, so splitting one
  // would put its L2 under two workers). Blocks with no active core carry no
  // work, so they don't count toward the useful worker ceiling.
  const int active_blocks = (n + cfg.cores_per_block - 1) / cfg.cores_per_block;
  const int w = std::clamp(shard_threads_req_, 1, active_blocks);
  shard_count_ = w;
  last_shard_count_ = w;

  // Observers that consume events in dispatch order (tracer spans, the
  // recovery manager's scrubber clock, fault-plan trigger matching) — and
  // the coherent baseline, whose directory mutates remote blocks' state on
  // any store — need the full serial order, not just serialized
  // shared-level access. Fall back to one-quantum-at-a-time dispatch;
  // results stay bit-identical, only the overlap is lost. The oracle is NOT
  // on this list: overlapped verification buffers its memory hooks per
  // quantum and applies them in dispatch order (verify/oracle.hpp). A
  // forced fallback used to be silent — a `--verify --shard-threads 4` run
  // quietly lost its parallelism — so it now names the forcing observer
  // once on stderr and is recorded in the stats JSON ("shard" object).
  const FaultPlan* fp = hier_->fault_plan();
  const char* force = nullptr;
  if (hier_->coherent()) {
    force = "the hardware-coherent baseline";
  } else if (tracer_ != nullptr) {
    force = "the tracer (--trace-out)";
  } else if (resil_ != nullptr) {
    force = "the recovery subsystem (--recover)";
  } else if (fp != nullptr && !fp->empty()) {
    force = "the armed fault plan (--inject)";
  }
  shard_serialize_ = force != nullptr;
  shard_serialize_reason_ = force == nullptr ? "" : force;
  if (force != nullptr) {
    std::fprintf(stderr,
                 "hicsim: --shard-threads %d: serialized by %s (one quantum "
                 "at a time; results unchanged)\n",
                 shard_threads_req_, force);
  }
  oracle_overlap_ = oracle_ != nullptr && !shard_serialize_;

  heap_.reserve(ctxs_.size());
  for (auto& up : ctxs_) {
    CoreCtx& c = *up;
    c.shard = (c.id / cfg.cores_per_block) * w / active_blocks;
    c.seq = 0;
    c.aru.store(0, std::memory_order_relaxed);
    c.gate_until = 0;
    c.order_clear = false;
    push_ready(c);
  }
  next_seq_ = 0;
  unfinished_cores_ = n;
  cv_waiters_ = 0;
  shard_publish_top_locked();  // seed the spin-loop hint (no workers yet)
  runners_ = std::make_unique<ShardRunner[]>(static_cast<std::size_t>(w));
  shardctx_.clear();
  for (int i = 0; i < w; ++i)
    shardctx_.push_back(std::make_unique<ShardCtx>());

  // The shared L3 slices and DRAM belong to no shard; the hierarchy calls
  // this gate before touching them (serialize mode satisfies it trivially),
  // passing the bank (L3 slice / DRAM channel) the access targets so the
  // engine can keep deterministic per-bank admission counts. The acting
  // core comes from the worker's thread-local — the deepest call sites
  // (eviction cascades) have no CoreId in scope.
  bank_gate_count_ = std::max(cfg.multi_block() ? cfg.l3_banks : 4, 1);
  bank_gates_ = std::make_unique<BankGate[]>(
      static_cast<std::size_t>(bank_gate_count_));
  hier_->set_shared_access_gate([this](int bank) {
    if (CoreCtx* c = t_active_core_) shard_bank_gate(*c, bank);
  });
  if (oracle_overlap_) oracle_->begin_overlap(next_seq_);
  sharded_active_ = true;
  for (int i = 0; i < w; ++i)
    shardctx_[static_cast<std::size_t>(i)]->thr =
        std::thread([this, i] { shard_worker(i); });
  for (auto& s : shardctx_) s->thr.join();
  sharded_active_ = false;
  hier_->set_shared_access_gate(nullptr);
  if (oracle_overlap_) {
    oracle_->end_overlap(abort_.load(std::memory_order_relaxed));
    oracle_overlap_ = false;
  }

  // Folding in fixed shard order keeps even a hypothetical non-commutative
  // future counter deterministic; today's sums are order-blind anyway.
  for (auto& s : shardctx_) {
    stats().merge_lane(s->lane);
    if (s->err && !shard_infra_error_) shard_infra_error_ = s->err;
  }
}

void Engine::shard_worker(int self) {
  ShardCtx& s = *shardctx_[static_cast<std::size_t>(self)];
#ifdef HIC_ASAN_FIBERS
  {  // ASan needs this worker's stack bounds to annotate switches back.
    pthread_attr_t attr;
    pthread_getattr_np(pthread_self(), &attr);
    void* addr = nullptr;
    std::size_t size = 0;
    pthread_attr_getstack(&attr, &addr, &size);
    pthread_attr_destroy(&attr);
    s.stack_bottom = addr;
    s.stack_size = size;
  }
#endif
  s.tsan_fiber = tsan_current_fiber();
  SimStats::set_thread_lane(&s.lane);
  try {
    std::unique_lock<std::mutex> lk(shard_mu_);
    while (!abort_.load(std::memory_order_relaxed) && unfinished_cores_ > 0 &&
           !watchdog_tripped_ && !shard_deadlock_) {
      CoreCtx* c = shard_try_dispatch_locked(self);
      if (c != nullptr) {
        lk.unlock();
        shard_run_quantum(self, *c);
        lk.lock();
        continue;
      }
      if (!shard_any_runner_locked()) {
        // Nothing is running, so core states are stable: diagnose under the
        // lock, exactly as the single-thread scheduler would see them.
        if (heap_.empty()) {
          Cycle at = 0;
          for (auto& up : ctxs_) at = std::max(at, up->time);
          hang_report_ = build_hang_report(HangReport::Kind::Deadlock, at);
          shard_deadlock_ = true;
          abort_.store(true, std::memory_order_relaxed);
          shard_cv_.notify_all();
          break;
        }
        if (max_cycles_ != 0 && heap_.front().first > max_cycles_) {
          Cycle at = 0;
          for (auto& up : ctxs_) at = std::max(at, up->time);
          hang_report_ = build_hang_report(HangReport::Kind::Watchdog, at);
          watchdog_tripped_ = true;
          abort_.store(true, std::memory_order_relaxed);
          shard_cv_.notify_all();
          break;
        }
      }
      // Heap top belongs to another shard, or clocks don't allow it yet.
      // Clock advances are lock-free and never signal, so poll the hint
      // without the lock first; the cv nap is only the deep-idle fallback
      // (its timeout bounds the unnotified-progress window).
      lk.unlock();
      bool promising = false;
      for (int spin = 0; spin < kDispatchSpins; ++spin) {
        if (abort_.load(std::memory_order_relaxed)) break;
        if (shard_hint_dispatchable(self)) {
          promising = true;
          break;
        }
        // Periodic sched yields keep an oversubscribed host (fewer CPUs
        // than workers) productive: the running worker gets the timeslice
        // back instead of watching us poll its clock.
        if ((spin & 63) == 63)
          std::this_thread::yield();
        else
          cpu_relax();
      }
      lk.lock();
      if (promising || abort_.load(std::memory_order_relaxed)) continue;
      ++cv_waiters_;
      shard_cv_.wait_for(lk, std::chrono::microseconds(50));
      --cv_waiters_;
    }
    lk.unlock();
    if (abort_.load(std::memory_order_relaxed)) {
      // Resume each of this shard's unfinished fibers once so its body
      // unwinds (the pending yield/gate throws AbortRun); never-started
      // fibers skip the body and finish immediately. Fibers never migrate
      // workers, so each worker can only unwind its own.
      for (auto& up : ctxs_) {
        CoreCtx& c = *up;
        if (c.shard != self || c.state == CoreCtx::St::Finished) continue;
        shard_run_quantum(self, c);
      }
    }
  } catch (...) {
    // Engine-infrastructure failure (the fibers catch their own): abort the
    // run and hand the exception to run(). Skipping this worker's unwind
    // leaks its fibers' stacks' destructors, but the run is lost anyway.
    s.err = std::current_exception();
    abort_.store(true, std::memory_order_relaxed);
    shard_cv_.notify_all();
  }
  SimStats::set_thread_lane(nullptr);
}

void Engine::shard_run_quantum(int self, CoreCtx& c) {
  ShardCtx& s = *shardctx_[static_cast<std::size_t>(self)];
  // Valid across the fiber's in-place self-redispatch (same core, same
  // thread); cleared when control returns to this scheduler context.
  t_active_core_ = &c;
  tsan_switch(c.tsan_fiber);
  fiber_switch_start(&s.asan_fake, c.stack.get(), kFiberStackBytes);
  swapcontext(&s.main, &c.uctx);
  fiber_switch_finish(s.asan_fake);
  t_active_core_ = nullptr;
}

void Engine::shard_publish_top_locked() {
  if (heap_.empty()) {
    shard_top_shard_.store(-1, std::memory_order_release);
    return;
  }
  shard_top_time_.store(heap_.front().first, std::memory_order_relaxed);
  shard_top_shard_.store(ctx(heap_.front().second).shard,
                         std::memory_order_release);
}

bool Engine::shard_hint_dispatchable(int self) const {
  if (shard_top_shard_.load(std::memory_order_acquire) != self) return false;
  // The (shard, time) pair can be torn across a heap mutation — it's only a
  // hint; shard_try_dispatch_locked revalidates everything under the lock.
  const Cycle t = shard_top_time_.load(std::memory_order_relaxed);
  for (int i = 0; i < shard_count_; ++i) {
    const ShardRunner& r = runners_[i];
    if (r.seq.load(std::memory_order_acquire) == kIdleSeq) continue;
    if (shard_serialize_) return false;
    if (r.clock.load(std::memory_order_acquire) <= t) return false;
  }
  return true;
}

bool Engine::shard_any_runner_locked() const {
  for (int i = 0; i < shard_count_; ++i) {
    if (runners_[i].seq.load(std::memory_order_acquire) != kIdleSeq)
      return true;
  }
  return false;
}

bool Engine::shard_clocks_allow_locked(Cycle t) const {
  for (int i = 0; i < shard_count_; ++i) {
    const ShardRunner& r = runners_[i];
    if (r.seq.load(std::memory_order_acquire) == kIdleSeq) continue;
    if (shard_serialize_) return false;
    // Strictly greater: a runner at clock == t could still insert an entry
    // at t that ties the top and wins on core id.
    if (r.clock.load(std::memory_order_acquire) <= t) return false;
  }
  return true;
}

Engine::CoreCtx* Engine::shard_try_dispatch_locked(int self) {
  if (heap_.empty()) return nullptr;
  const Cycle t = heap_.front().first;
  CoreCtx& c = ctx(heap_.front().second);
  if (c.shard != self) return nullptr;
  if (max_cycles_ != 0 && t > max_cycles_) return nullptr;  // watchdog
  if (!shard_clocks_allow_locked(t)) return nullptr;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  shard_publish_top_locked();
  shard_arm_locked(c);
  return &c;
}

bool Engine::shard_try_redispatch_self_locked(CoreCtx& c) {
  if (c.state != CoreCtx::St::Ready) return false;
  if (heap_.empty() || heap_.front().second != c.id) return false;
  if (max_cycles_ != 0 && heap_.front().first > max_cycles_) return false;
  if (!shard_clocks_allow_locked(heap_.front().first)) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  shard_publish_top_locked();
  shard_arm_locked(c);
  return true;
}

void Engine::shard_arm_locked(CoreCtx& c) {
  c.seq = next_seq_++;
  // Arm runs on the worker that will execute the quantum (dispatch and
  // self-redispatch both happen there), so the oracle's thread-local event
  // buffer opens on the right host thread.
  if (oracle_overlap_) oracle_->quantum_begin(c.seq);
  // The single-thread scheduler's run_until: heap second + slack, capped so
  // a spinning core still yields and lets the watchdog fire. Entries the
  // still-running earlier quanta haven't inserted yet arrive as patches.
  const Cycle second = heap_.empty() ? kNever : heap_.front().first;
  Cycle aru = second == kNever ? kNever : second + slack_;
  if (max_cycles_ != 0) aru = std::min(aru, max_cycles_ + 1);
  c.aru.store(aru, std::memory_order_relaxed);
  // Every active runner was dispatched before us (we hold the lock and our
  // slot is still idle), so this scan seeds the skew gate's cached floor:
  // future insertions by those runners land at >= the minimum clock here.
  Cycle m = kNever;
  for (int i = 0; i < shard_count_; ++i) {
    const ShardRunner& r = runners_[i];
    if (r.seq.load(std::memory_order_acquire) == kIdleSeq) continue;
    m = std::min(m, r.clock.load(std::memory_order_acquire));
  }
  c.gate_until = m == kNever ? kNever : m + slack_;
  c.order_clear = m == kNever;
  // The dispatch of the globally earliest core is the serialized
  // deterministic point driving the scrubber clock; resil_ attached forces
  // serialize mode, so these fire in exactly the single-thread order.
  if (resil_ != nullptr) resil_->on_dispatch(c.time);
  ShardRunner& r = runners_[c.shard];
  r.core = &c;
  r.clock.store(c.time, std::memory_order_relaxed);
  r.seq.store(c.seq, std::memory_order_release);  // publishes core + clock
}

void Engine::shard_end_quantum_locked(CoreCtx& c) {
  if (c.state == CoreCtx::St::Ready) {
    // Rejoin: the single-thread scheduler had this entry in the heap when it
    // armed every quantum dispatched after us — deliver the missing cap.
    push_ready(c);
    shard_patch_locked(c.seq, c.time);
  } else if (c.state == CoreCtx::St::Finished) {
    --unfinished_cores_;
  }
  // Blocked cores re-enter the heap via wake(), never here.
  runners_[c.shard].seq.store(kIdleSeq, std::memory_order_release);
  runners_[c.shard].core = nullptr;
  if (cv_waiters_ > 0) shard_cv_.notify_all();
}

void Engine::shard_patch_locked(std::uint64_t inserter_seq, Cycle at) {
  const Cycle nu = at >= kNever - slack_ ? kNever : at + slack_;
  for (int i = 0; i < shard_count_; ++i) {
    ShardRunner& r = runners_[i];
    const std::uint64_t rs = r.seq.load(std::memory_order_acquire);
    if (rs == kIdleSeq || rs <= inserter_seq) continue;
    // r.core is stable while the slot is non-idle: retirement takes the
    // same lock we hold.
    horizon_shrink(r.core->aru, nu);
  }
}

void Engine::shard_gate_slow(CoreCtx& c) {
  int spins = 0;
  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) throw AbortRun{};
    // Min live clock over quanta dispatched before us. Seq is re-checked
    // after the clock read: seqs are never reused, so an unchanged value
    // pins the clock to that quantum; a change means the slot turned over
    // mid-read and the scan must restart.
    Cycle m = kNever;
    bool retry = false;
    for (int i = 0; i < shard_count_; ++i) {
      const ShardRunner& r = runners_[i];
      const std::uint64_t rs = r.seq.load(std::memory_order_acquire);
      if (rs == kIdleSeq || rs >= c.seq) continue;
      const Cycle clk = r.clock.load(std::memory_order_acquire);
      if (r.seq.load(std::memory_order_acquire) != rs) {
        retry = true;
        break;
      }
      m = std::min(m, clk);
    }
    if (retry) continue;
    // The scan acquire-read every slot, so horizon patches from quanta that
    // already retired are visible in aru now; check it after the scan.
    if (c.time >= c.aru.load(std::memory_order_acquire)) {
      yield(c);  // the boundary the single-thread scheduler would have hit
      spins = 0;
      continue;
    }
    if (c.time < (m == kNever ? kNever : m + slack_)) {
      // Any future insertion by an earlier quantum patches aru to >= this
      // floor, so ops below it need no rescan (the inline fast path).
      c.gate_until = m == kNever ? kNever : m + slack_;
      if (m == kNever) c.order_clear = true;  // all earlier quanta retired
      return;
    }
    if (++spins >= kGateSpins) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

void Engine::shard_order_gate(CoreCtx& c) {
  if (!sharded_active_ || c.order_clear) return;
  int spins = 0;
  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) throw AbortRun{};
    bool earlier = false;
    for (int i = 0; i < shard_count_; ++i) {
      const std::uint64_t rs =
          runners_[i].seq.load(std::memory_order_acquire);
      if (rs != kIdleSeq && rs < c.seq) {
        earlier = true;
        break;
      }
    }
    if (!earlier) {
      // All earlier quanta retired (their horizon patches are visible via
      // the acquires above); one final boundary check settles whether the
      // single-thread scheduler would have ended this quantum first.
      if (c.time >= c.aru.load(std::memory_order_acquire)) {
        yield(c);
        if (c.order_clear) return;  // re-armed with no earlier runners
        spins = 0;
        continue;
      }
      c.order_clear = true;
      return;
    }
    if (c.time >= c.aru.load(std::memory_order_acquire)) {
      yield(c);
      if (c.order_clear) return;
      spins = 0;
      continue;
    }
    if (++spins >= kGateSpins) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

void Engine::relinquish_sharded(CoreCtx& c) {
  // Close and enqueue the quantum's oracle buffer BEFORE the runner slot
  // goes idle below: a later quantum passing the order gate (no earlier
  // runner slots) must find every earlier buffer already enqueued.
  if (oracle_overlap_) oracle_->quantum_end();
  {
    std::lock_guard<std::mutex> lk(shard_mu_);
    shard_end_quantum_locked(c);
    // Fast path: the yielding core is the heap top and dispatchable —
    // re-arm in place, zero context switches (the direct scheduler's
    // pick-self case).
    if (!abort_.load(std::memory_order_relaxed) &&
        shard_try_redispatch_self_locked(c))
      return;
  }
  // Park this fiber inside the swap; it resumes right here when its shard's
  // worker dispatches it again (or unwinds it at teardown).
  ShardCtx& s = *shardctx_[static_cast<std::size_t>(c.shard)];
  tsan_switch(s.tsan_fiber);
  fiber_switch_start(&c.asan_fake, s.stack_bottom, s.stack_size);
  swapcontext(&c.uctx, &s.main);
  fiber_switch_finish(c.asan_fake);
}

void Engine::shard_bank_gate(CoreCtx& c, int bank) {
  // Admission to any shared-level bank is retirement-ordered: an earlier
  // active quantum can still touch ANY bank later in its quantum, and its
  // footprint is unknowable up front, so admitting this op before all
  // earlier quanta retired could reorder the serial schedule even when the
  // banks differ right now. The bank key's payload is the deterministic
  // per-bank admission count (and per-slice contention visibility), not a
  // relaxation of the ordering the replay promises.
  shard_order_gate(c);
  if (bank >= 0 && bank < bank_gate_count_)
    bank_gates_[bank].serial.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Engine::bank_gate_serials() const {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(bank_gate_count_));
  for (int i = 0; i < bank_gate_count_; ++i)
    out.push_back(bank_gates_[i].serial.load(std::memory_order_relaxed));
  return out;
}

void Engine::oracle_sync_point(CoreCtx& c) {
  if (oracle_overlap_) oracle_->sync_flush(c.seq);
}

void Engine::oracle_resume_sync(CoreCtx& c) {
  if (!oracle_overlap_) return;
  // The core was just woken in a fresh quantum; the inline hook that
  // follows (lock grant / flag wait acquire edge) must run as the oldest
  // active quantum, exactly like every other inline sync hook. The extra
  // gate is overlap-only: serialized and unverified sharded runs keep
  // today's wake path.
  shard_order_gate(c);
  oracle_->sync_flush(c.seq);
}

}  // namespace hic
