// Timing model of the per-core write buffer, implementing the instruction
// reordering rules of paper §III-C:
//
//   - stores, WB and INV retire into the write buffer and drain in order
//     (bandwidth-limited, overlapped with execution);
//   - a load may bypass pending stores and WBs (a WB does not change the
//     local value), but never a pending INV — the INV must complete first;
//   - synchronization operations (acquire/release/barrier/flag) drain the
//     buffer completely before taking effect (release semantics).
//
// Functionally, stores and WB/INV apply at issue (the engine is serialized);
// the buffer tracks *when* they complete so stalls land where the paper's
// breakdown puts them: waits on Store/WB entries are WB stall, waits on INV
// entries are INV stall.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace hic {

class Tracer;

enum class WbEntryKind : std::uint8_t { Store, Wb, Inv };

class WriteBufferModel {
 public:
  WriteBufferModel(int capacity, Cycle store_drain_cycles);

  /// Inserts an entry at time `now` whose drain takes `service` cycles
  /// (serialized after earlier entries). Returns the stall the core suffers
  /// when the buffer is full (waiting for the oldest entry to retire).
  Cycle issue(Cycle now, WbEntryKind kind, Addr line_addr, Cycle service);

  /// Store shorthand: drains at the configured background rate.
  Cycle issue_store(Cycle now, Addr line_addr) {
    return issue(now, WbEntryKind::Store, line_addr, store_drain_cycles_);
  }

  /// Cycles a load issued at `now` must wait for pending INV entries
  /// (loads never bypass an INV; §III-C). Whole-cache INVs are recorded
  /// with line_addr kAllLines and block every load.
  [[nodiscard]] Cycle inv_wait(Cycle now, Addr line_addr) const;

  /// True if a pending WB exists for the line (loads bypass it; exposed for
  /// the ordering tests).
  [[nodiscard]] bool has_pending_wb(Cycle now, Addr line_addr) const;
  [[nodiscard]] bool has_pending_store(Cycle now, Addr line_addr) const;

  /// Wait to empty the buffer at `now`, split by blame: waits attributable
  /// to Store/WB entries vs INV entries (each entry's drain segment goes to
  /// its own kind).
  struct DrainWait {
    Cycle wb_wait = 0;
    Cycle inv_wait = 0;
    [[nodiscard]] Cycle total() const { return wb_wait + inv_wait; }
  };
  [[nodiscard]] DrainWait drain_wait(Cycle now) const;

  /// Drops entries completed by `now`.
  void retire_until(Cycle now);

  [[nodiscard]] std::size_t pending(Cycle now) const;
  [[nodiscard]] int capacity() const { return capacity_; }

  /// In-flight entries at `now`, oldest first (hang-report core dumps show
  /// what a blocked core still had queued).
  struct PendingEntry {
    Cycle complete;
    WbEntryKind kind;
    Addr line;  ///< kAllLines for whole-cache WB/INV
  };
  [[nodiscard]] std::vector<PendingEntry> snapshot(Cycle now) const;

  /// Sentinel line address meaning "the whole cache" (WB ALL / INV ALL).
  static constexpr Addr kAllLines = ~Addr{0};

  /// Attaches a tracer (nullptr = off): each entry's background drain window
  /// [start, complete) is recorded as a span on `core`'s wbuf track.
  void set_tracer(Tracer* t, CoreId core) {
    tracer_ = t;
    core_ = core;
  }

 private:
  void trace_drain(Cycle start, Cycle complete, WbEntryKind kind, Addr line);

  struct Entry {
    Cycle complete;
    WbEntryKind kind;
    Addr line;
  };

  int capacity_;
  Cycle store_drain_cycles_;
  std::deque<Entry> q_;       ///< completion-ordered (FIFO drain)
  Cycle last_complete_ = 0;
  Tracer* tracer_ = nullptr;
  CoreId core_ = 0;
};

}  // namespace hic
