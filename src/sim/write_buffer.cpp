#include "sim/write_buffer.hpp"

#include <algorithm>

#include "obs/tracer.hpp"

namespace hic {

WriteBufferModel::WriteBufferModel(int capacity, Cycle store_drain_cycles)
    : capacity_(capacity), store_drain_cycles_(store_drain_cycles) {
  HIC_CHECK(capacity_ > 0);
  HIC_CHECK(store_drain_cycles_ > 0);
}

Cycle WriteBufferModel::issue(Cycle now, WbEntryKind kind, Addr line_addr,
                              Cycle service) {
  retire_until(now);
  Cycle stall = 0;
  if (q_.size() >= static_cast<std::size_t>(capacity_)) {
    // Full: the core waits for the oldest in-flight entry to retire before
    // the new one gets its slot. The entry is NOT popped here — it is still
    // draining during the wait, so pending()/snapshot() must keep reporting
    // it until its completion time passes (retire_until drops it then).
    // Completion times are non-decreasing, so waiting for the entry at
    // index size-capacity frees exactly enough slots.
    const Entry& oldest =
        q_[q_.size() - static_cast<std::size_t>(capacity_)];
    stall = oldest.complete > now ? oldest.complete - now : 0;
  }
  const Cycle start = std::max(now + stall, last_complete_);
  const Cycle complete = start + std::max<Cycle>(service, 1);
  q_.push_back({complete, kind, line_addr});
  last_complete_ = complete;
  if (tracer_ != nullptr) trace_drain(start, complete, kind, line_addr);
  return stall;
}

void WriteBufferModel::trace_drain(Cycle start, Cycle complete,
                                   WbEntryKind kind, Addr line) {
  const char* name = "store_drain";
  if (kind == WbEntryKind::Wb) name = "wb_drain";
  if (kind == WbEntryKind::Inv) name = "inv_drain";
  tracer_->span(TraceCat::Wbuf, core_, start, complete, name,
                static_cast<std::int64_t>(line));
}

Cycle WriteBufferModel::inv_wait(Cycle now, Addr line_addr) const {
  Cycle until = now;
  for (const auto& e : q_) {
    if (e.complete <= now || e.kind != WbEntryKind::Inv) continue;
    if (e.line == kAllLines || e.line == line_addr)
      until = std::max(until, e.complete);
  }
  return until - now;
}

bool WriteBufferModel::has_pending_wb(Cycle now, Addr line_addr) const {
  for (const auto& e : q_)
    if (e.complete > now && e.kind == WbEntryKind::Wb &&
        (e.line == kAllLines || e.line == line_addr))
      return true;
  return false;
}

bool WriteBufferModel::has_pending_store(Cycle now, Addr line_addr) const {
  for (const auto& e : q_)
    if (e.complete > now && e.kind == WbEntryKind::Store &&
        e.line == line_addr)
      return true;
  return false;
}

WriteBufferModel::DrainWait WriteBufferModel::drain_wait(Cycle now) const {
  DrainWait w;
  Cycle cursor = now;
  for (const auto& e : q_) {
    if (e.complete <= cursor) continue;
    const Cycle seg = e.complete - cursor;
    if (e.kind == WbEntryKind::Inv) {
      w.inv_wait += seg;
    } else {
      w.wb_wait += seg;
    }
    cursor = e.complete;
  }
  return w;
}

void WriteBufferModel::retire_until(Cycle now) {
  while (!q_.empty() && q_.front().complete <= now) q_.pop_front();
}

std::size_t WriteBufferModel::pending(Cycle now) const {
  std::size_t n = 0;
  for (const auto& e : q_)
    if (e.complete > now) ++n;
  return n;
}

std::vector<WriteBufferModel::PendingEntry> WriteBufferModel::snapshot(
    Cycle now) const {
  std::vector<PendingEntry> out;
  for (const auto& e : q_)
    if (e.complete > now) out.push_back({e.complete, e.kind, e.line});
  return out;
}

}  // namespace hic
