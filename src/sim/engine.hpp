// The execution-driven simulation engine (the SESC substitute).
//
// Each simulated core's workload runs on its own host execution context —
// a ucontext fiber on a single host thread by default, one host thread per
// core under the legacy scheduler — but the engine serializes them: exactly
// one simulated core executes at any moment, and the engine always
// dispatches the ready core with the smallest local clock (ties broken by
// core ID), letting it run ahead until it passes the next core's clock plus
// a small slack. Identical inputs therefore produce identical cycle counts,
// traffic and stall breakdowns on every run. Fibers make the handoff a
// user-space context switch (~100x cheaper than the futex round trip a
// thread handoff costs); the dispatch order is computed identically either
// way, so the two modes simulate bit-identical machines.
//
// Timing model per core: in-order issue with blocking loads and a write
// buffer (write_buffer.hpp) that drains stores/WB/INV in the background —
// an intentional simplification of the paper's 4-issue OoO core that keeps
// the first-order effects (miss latency, WB/INV stalls, sync waits) intact.
//
// Stall attribution follows Figure 9:
//   INV stall     — INV execution, IEB refreshes, loads waiting on pending INVs
//   WB stall      — WB execution and write-buffer drains at sync points
//   lock stall    — waiting for a lock grant
//   barrier stall — waiting at barriers and flag waits
//   rest          — everything else (compute, ordinary misses)
#pragma once

#include <ucontext.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "fault/event_ring.hpp"
#include "fault/hang_report.hpp"
#include "hierarchy/memory_hierarchy.hpp"
#include "sim/write_buffer.hpp"
#include "sync/sync_controller.hpp"

namespace hic {

class CoherenceOracle;
class Engine;
class ResilienceManager;
class Tracer;

/// Thrown inside workload bodies when the engine aborts the run (deadlock).
struct AbortRun {};

/// Thrown inside a workload body when its core reaches an injected fail-stop
/// cycle (core-fail / cluster-fail). Unwinds the victim's fiber to Finished;
/// unlike AbortRun it is NOT an error — the rest of the machine keeps
/// running.
struct CoreKilled {};

/// The per-core interface workload code runs against.
class CoreServices {
 public:
  [[nodiscard]] CoreId core() const { return id_; }
  [[nodiscard]] Cycle now() const;

  /// Advances the core's clock by `cycles` of useful work.
  void compute(Cycle cycles);

  /// Timed+functional memory access (word-aligned, within one line).
  AccessOutcome load(Addr a, std::uint32_t bytes, void* out);
  AccessOutcome store(Addr a, std::uint32_t bytes, const void* in);

  // --- Coherence-management instructions (issue like stores, §III-C) ------
  void wb_range(AddrRange r, Level to = Level::L2);
  void wb_all(Level to = Level::L2);
  void inv_range(AddrRange r, Level from = Level::L1);
  void inv_all(Level from = Level::L1);
  void wb_cons(AddrRange r, ThreadId consumer);
  void wb_cons_all(ThreadId consumer);
  void inv_prod(AddrRange r, ThreadId producer);
  void inv_prod_all(ThreadId producer);
  void cs_enter();
  void cs_exit();

  /// Waits for the write buffer to empty (release fence).
  void drain_write_buffer();

  /// Initiates a synchronous DMA transfer (Runnemede's inter-block
  /// mechanism); the initiating core waits for completion.
  void dma_copy(BlockId src_block, Addr src, BlockId dst_block, Addr dst,
                std::uint64_t bytes);

  // --- Synchronization (blocking; requests go to the sync controller) -----
  void barrier(SyncId id);
  void lock(SyncId id);
  void unlock(SyncId id);
  void flag_wait(SyncId id, std::uint64_t expect);
  void flag_set(SyncId id, std::uint64_t value);
  std::uint64_t flag_add(SyncId id, std::uint64_t delta);

  // --- Non-blocking synchronization (chaos/failover paths) ----------------
  /// True: the lock was free and is now held. False: held elsewhere; the
  /// core is NOT queued and pays only the round trip (retry with backoff).
  [[nodiscard]] bool try_lock(SyncId id);
  /// Reads a flag's value without blocking or registering a waiter. Charges
  /// the round trip; establishes no happens-before edge (polling only).
  [[nodiscard]] std::uint64_t flag_peek(SyncId id);
  /// Non-blocking flag_wait: true when `value >= expect` already holds (the
  /// acquire edge is established exactly as flag_wait's); false otherwise
  /// (no waiter registered, no edge).
  [[nodiscard]] bool flag_try_wait(SyncId id, std::uint64_t expect);

  /// Marks the next load/store of this core as a declared racy access
  /// (Thread::racy_load/racy_store), exempting it from the coherence
  /// oracle's race checks. No-op when no oracle is attached.
  void oracle_mark_racy();

  [[nodiscard]] HierarchyBase& hierarchy();
  [[nodiscard]] SimStats& stats();
  [[nodiscard]] Engine& engine() { return *eng_; }

 private:
  friend class Engine;
  Engine* eng_ = nullptr;
  CoreId id_ = kInvalidCore;
};

class Engine {
 public:
  /// `slack`: how many cycles a dispatched core may run past the next
  /// core's clock before yielding (larger = fewer context switches, looser
  /// event interleaving; determinism is preserved either way).
  Engine(HierarchyBase& hier, SyncController& sync, Cycle slack = 64);

  using CoreBody = std::function<void(CoreServices&)>;

  /// Runs one body per core (bodies.size() cores participate) to completion.
  void run(std::vector<CoreBody> bodies);

  [[nodiscard]] HierarchyBase& hierarchy() { return *hier_; }
  [[nodiscard]] SyncController& sync() { return *sync_; }
  [[nodiscard]] SimStats& stats() { return hier_->sim_stats(); }

  /// The finishing time of the slowest core in the last run.
  [[nodiscard]] Cycle finish_time() const { return finish_time_; }

  /// Livelock watchdog: if any core's clock passes `cycles`, the run aborts
  /// with a HangReport instead of spinning forever. 0 disables (default).
  void set_max_cycles(Cycle cycles) { max_cycles_ = cycles; }
  [[nodiscard]] Cycle max_cycles() const { return max_cycles_; }

  /// The diagnosis of the last deadlock/watchdog abort (empty cores vector
  /// if the last run finished cleanly). The same report's render() is the
  /// message of the CheckFailure run() throws.
  [[nodiscard]] const HangReport& hang_report() const { return hang_report_; }

  /// Selects the original one-host-thread-per-core engine loop instead of
  /// the direct-handoff fiber scheduler. Both dispatch the same core
  /// sequence and produce bit-identical simulations; the legacy path costs
  /// a futex round trip through the engine thread plus an O(cores)
  /// ready-scan per quantum, where fibers pay one user-space swapcontext.
  void set_legacy_scheduler(bool on) { legacy_ = on; }
  [[nodiscard]] bool legacy_scheduler() const { return legacy_; }

  /// Sharded execution: partition the machine by cluster (block), pin each
  /// partition's fibers to its own host worker thread, and let partitions
  /// advance concurrently under a conservative-lookahead protocol that
  /// replays the direct scheduler's exact quantum sequence (docs/
  /// performance.md). Simulated results — stats, cycles, traces, oracle
  /// verdicts, fault accounting — are bit-identical to the single-thread
  /// schedulers; only host wall-clock changes. `n` is the requested worker
  /// count: 0 (default) disables sharding, values above the machine's block
  /// count are clamped (a shard owns at least one whole block, since blocks
  /// share an L2). Incompatible with the legacy scheduler.
  void set_shard_threads(int n) { shard_threads_req_ = n; }
  [[nodiscard]] int shard_threads() const { return shard_threads_req_; }
  /// Worker threads the last run actually used (0 = unsharded run).
  [[nodiscard]] int effective_shards() const { return last_shard_count_; }
  /// True when the last sharded run fell back to one-quantum-at-a-time
  /// dispatch (order-sensitive observer / coherent hierarchy / fault plan
  /// armed). The oracle no longer forces this: overlapped verification
  /// buffers its memory hooks per quantum and applies them in dispatch
  /// order (verify/oracle.hpp).
  [[nodiscard]] bool shard_serialized() const { return shard_serialize_; }
  /// Human-readable name of the observer that forced serialize mode in the
  /// last sharded run (empty when the run overlapped or was not sharded).
  [[nodiscard]] const std::string& shard_serialize_reason() const {
    return shard_serialize_reason_;
  }
  /// Per-bank admission counts of the banked shared-access gate in the last
  /// sharded run (index = L3 slice / DRAM channel). Admissions happen in
  /// retirement order, so the per-bank sequences are deterministic: equal
  /// across worker counts for the same workload. Empty for unsharded runs.
  [[nodiscard]] std::vector<std::uint64_t> bank_gate_serials() const;

  /// Attaches an event tracer (nullptr = off; see obs/tracer.hpp). When set,
  /// every stall charge, op/sync call window and write-buffer drain is
  /// recorded as a span; must outlive run(). Off costs one pointer test per
  /// hook, so timing and stats are unchanged either way.
  void set_tracer(Tracer* t) { tracer_ = t; }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }

  /// Attaches the coherence oracle (nullptr = off; see verify/oracle.hpp).
  /// When set, every sync operation reports its happens-before edge and
  /// every DMA its transfer, so the oracle's vector clocks track the
  /// program's ordering. Off costs one pointer test per hook.
  void set_oracle(CoherenceOracle* o) { oracle_ = o; }
  [[nodiscard]] CoherenceOracle* oracle() const { return oracle_; }

  /// Attaches the recovery subsystem (nullptr = off; see resil/resil.hpp).
  /// When set, every dispatch advances the ECC scrubber's clock — a
  /// deterministic serialized point, so scrub sweeps land identically on
  /// every run. Off costs one pointer test per dispatch.
  void set_resil(ResilienceManager* r) { resil_ = r; }
  [[nodiscard]] ResilienceManager* resil() const { return resil_; }

  /// Arms fail-stop (chaos) injection: core i halts at the first operation
  /// boundary at or after cycles[i] (0 = never). The victim's fiber unwinds
  /// via CoreKilled, its sync-controller state is cleaned up (held locks
  /// pass to their FIFO successors, queue/waiter entries vanish), and the
  /// fail callback below runs first on the victim's own fiber. Fail-armed
  /// runs never shard: the direct scheduler is used regardless of
  /// set_shard_threads (armed fault plans already serialize sharded runs).
  void set_fail_cycles(std::vector<Cycle> cycles);
  /// Invoked on the victim's fiber at kill time, before sync cleanup —
  /// the Machine records the fault and discards the victim's dirty lines.
  void set_fail_callback(std::function<void(CoreId, Cycle)> cb) {
    fail_cb_ = std::move(cb);
  }
  /// The armed halt cycle of one core (0 = none). Deterministic static
  /// config: serving layers use `fail_cycle_of(c) != 0 && now >= it` as
  /// their failure detector (models lease expiry with zero hidden state).
  [[nodiscard]] Cycle fail_cycle_of(CoreId core) const {
    const auto i = static_cast<std::size_t>(core);
    return i < fail_cycles_.size() ? fail_cycles_[i] : 0;
  }

 private:
  friend class CoreServices;

  struct CoreCtx {
    CoreId id = kInvalidCore;
    /// The core's program; runs on the fiber (or legacy thread) below.
    CoreBody body;
    // Fiber mode (default): a ucontext per core on the engine's own thread.
    ucontext_t uctx{};
    /// Deliberately uninitialized (new[] without ()): zeroing megabytes of
    /// stack per run() would dwarf the cost of the run itself.
    std::unique_ptr<unsigned char[]> stack;
    /// AddressSanitizer fake-stack handle for this fiber (unused otherwise).
    void* asan_fake = nullptr;
    // Legacy mode: a host thread per core, parked on `go`.
    std::thread thr;
    std::binary_semaphore go{0};
    enum class St : std::uint8_t { Ready, Blocked, Finished } state = St::Ready;
    Cycle time = 0;
    Cycle run_until = 0;
    Cycle block_start = 0;
    StallKind block_kind = StallKind::Rest;
    /// Sync variable the core is parked on while Blocked (-1 otherwise).
    /// Survives an abort teardown, so hang diagnosis can read it.
    SyncId blocked_on = -1;
    /// Injected fail-stop cycle (max() = none) and whether the kill fired.
    Cycle fail_at = std::numeric_limits<Cycle>::max();
    bool killed = false;
    // --- Sharded mode only (engine_sharded.cpp) ---------------------------
    /// Owning shard (fixed block partition; the core's fiber only ever runs
    /// on that shard's worker thread).
    int shard = 0;
    /// Dispatch sequence number of the core's current quantum. Assigned
    /// under the shard mutex in exactly the order the direct scheduler
    /// would dispatch, so it doubles as the global order of shared-state
    /// operations.
    std::uint64_t seq = 0;
    /// The quantum end (direct mode's run_until), atomic because earlier
    /// quanta running on other workers shrink it when they re-enter the
    /// ready heap below this core's horizon.
    std::atomic<Cycle> aru{0};
    /// Conservative skew-gate threshold: below this clock no patch from an
    /// earlier quantum can still be in flight, so ops skip the runner scan.
    Cycle gate_until = 0;
    /// Set once every earlier-dispatched quantum has retired; from then on
    /// globally-ordered ops (sync, L3/DRAM) need no wait this quantum.
    bool order_clear = false;
    /// ThreadSanitizer fiber handle (TSan builds only).
    void* tsan_fiber = nullptr;
    /// Last few operations the core performed (hang-report context).
    EventRing ring;
    WriteBufferModel wbuf;
    CoreServices svc;
    /// An exception the body threw; rethrown by run() after teardown.
    std::exception_ptr error;

    CoreCtx(CoreId i, int wb_entries, Cycle wb_drain)
        : id(i), wbuf(wb_entries, wb_drain) {}
  };

  CoreCtx& ctx(CoreId id) { return *ctxs_[static_cast<std::size_t>(id)]; }

  void charge(CoreCtx& c, StallKind k, Cycle cycles);
  /// Yields back to the scheduler if the core ran past its quantum.
  void maybe_yield(CoreCtx& c);
  void yield(CoreCtx& c);
  /// Direct handoff: the yielding core picks its successor from the ready
  /// heap and swaps straight to its fiber (or back to run() when nothing is
  /// dispatchable). Re-picking itself costs zero context switches.
  void relinquish(CoreCtx& c);
  /// Fiber entry point: runs the core's body, then hands off. The pointer
  /// to the CoreCtx rides in two ints (the makecontext calling convention).
  static void fiber_trampoline(unsigned hi, unsigned lo);
  /// Tail of a finished (or aborted) fiber: switches to the next ready
  /// fiber, or back to run(). Never returns — the fiber is dead.
  [[noreturn]] void fiber_finish(CoreCtx& c);
  /// Pops the earliest (time, id) ready core and arms its quantum; returns
  /// nullptr when no core is dispatchable (empty heap or watchdog trip).
  CoreCtx* pick_next();
  void push_ready(CoreCtx& c);
  /// Blocks the core until another core wakes it; charges the wait to `k`.
  /// `on` is the sync variable the core is waiting for (for hang diagnosis).
  void block(CoreCtx& c, StallKind k, SyncId on);
  /// Marks a blocked core runnable no earlier than `at`. `waker` is the
  /// core performing the wake (the currently running one).
  void wake(CoreCtx& waker, CoreId target, Cycle at);

  /// Hot-path fail-stop check at every op boundary: one predictable branch
  /// when no fail rule is armed, so golden runs stay bit-identical.
  void fail_point(CoreCtx& c) {
    if (fail_armed_ && !c.killed && c.time >= c.fail_at) fail_check(c);
  }
  /// The kill itself: runs on the victim's fiber. Invokes the fail
  /// callback, cleans up the sync controller (waking lock successors), and
  /// throws CoreKilled to unwind the body. [[noreturn]] in effect.
  void fail_check(CoreCtx& c);
  /// At a global stall, revives blocked cores with a pending fail-stop so
  /// they can self-kill (their wake will never come); true if any revived.
  bool revive_fail_victims();

  // --- Sharded execution (engine_sharded.cpp) -----------------------------
  static constexpr std::uint64_t kIdleSeq =
      std::numeric_limits<std::uint64_t>::max();
  /// One per worker: the quantum it is currently running, published so
  /// other workers' dispatch decisions and gates can read it lock-free.
  struct ShardRunner {
    std::atomic<std::uint64_t> seq{kIdleSeq};  ///< kIdleSeq = no quantum
    std::atomic<Cycle> clock{0};               ///< live clock of that core
    CoreCtx* core = nullptr;                   ///< written under shard_mu_
    char pad[64];  ///< keep shards' hot clocks off each other's cache line
  };
  /// One per worker thread: its scheduler context + private stats lane.
  struct ShardCtx {
    ucontext_t main{};
    void* asan_fake = nullptr;
    const void* stack_bottom = nullptr;
    std::size_t stack_size = 0;
    void* tsan_fiber = nullptr;
    StatsLane lane;
    std::exception_ptr err;  ///< engine-infrastructure failure on the worker
    std::thread thr;
  };
  /// The sharded run loop: partitions cores, launches workers, joins them,
  /// merges stats lanes. Sets shard_deadlock_ / watchdog_tripped_ (with
  /// hang_report_ built at detection time) instead of throwing.
  void run_sharded();
  void shard_worker(int self);
  /// Swaps the worker into the core's fiber for one quantum.
  void shard_run_quantum(int self, CoreCtx& c);
  /// Dispatches the heap top if it belongs to `self` and the conservative
  /// condition holds (every running quantum's clock is strictly past it).
  CoreCtx* shard_try_dispatch_locked(int self);
  void shard_arm_locked(CoreCtx& c);
  /// Retires the running quantum: re-enters the heap if still Ready,
  /// patches later runners' horizons, clears the runner slot.
  void shard_end_quantum_locked(CoreCtx& c);
  /// Fast path: the yielding core re-dispatches itself with zero context
  /// switches when it is the heap top and the dispatch condition holds.
  bool shard_try_redispatch_self_locked(CoreCtx& c);
  /// A heap insertion at `at` by quantum `inserter_seq` shrinks the horizon
  /// of every running quantum dispatched after it — the direct scheduler
  /// would have seen the entry when computing those quanta's run_until.
  void shard_patch_locked(std::uint64_t inserter_seq, Cycle at);
  [[nodiscard]] bool shard_clocks_allow_locked(Cycle t) const;
  [[nodiscard]] bool shard_any_runner_locked() const;
  /// Re-publishes the heap top (time, owning shard) after a heap mutation,
  /// so idle workers can poll dispatchability lock-free: runner clocks
  /// advance without notifying the cv, and sleeping through them costs more
  /// than the quanta themselves.
  void shard_publish_top_locked();
  /// Lock-free dispatchability hint for the idle-worker spin loop. May be
  /// stale in either direction — the dispatch under the lock revalidates.
  [[nodiscard]] bool shard_hint_dispatchable(int self) const;
  /// Sharded counterpart of relinquish(): ends the quantum and returns to
  /// the shard worker's context (or re-picks itself in place).
  void relinquish_sharded(CoreCtx& c);
  /// Skew gate, called at every op start: waits until no earlier-dispatched
  /// quantum could still insert a heap entry that must end this quantum at
  /// or before the current clock. The hot path is one comparison.
  void shard_gate(CoreCtx& c) {
    if (!sharded_active_) return;
    if (c.time < c.gate_until &&
        c.time < c.aru.load(std::memory_order_relaxed))
      return;
    shard_gate_slow(c);
  }
  void shard_gate_slow(CoreCtx& c);
  /// Global-order gate, called before ops on machine-global state (sync
  /// controller, L3/DRAM, declared-racy accesses): waits until every
  /// earlier-dispatched quantum has retired, so such ops execute exactly in
  /// the direct scheduler's quantum order.
  void shard_order_gate(CoreCtx& c);
  /// The banked variant installed as the hierarchy's shared-access gate:
  /// the order gate plus a deterministic per-bank admission count for the
  /// L3 slice / DRAM channel the access targets (kNoBank skips the count).
  /// Admission stays retirement-ordered — an earlier active quantum's
  /// future footprint is unknowable, so admitting a later quantum to a
  /// different bank first would reorder the serial schedule the replay
  /// promises (docs/performance.md).
  void shard_bank_gate(CoreCtx& c, int bank);
  /// Overlapped verification: applies every oracle event buffered by quanta
  /// dispatched before `c` plus c's own so far, so the inline sync hook the
  /// caller is about to invoke observes exactly the serialized shadow
  /// state. No-op unless the oracle runs overlapped. Caller must hold
  /// oldest-active status (shard_order_gate passed this quantum).
  void oracle_sync_point(CoreCtx& c);
  /// Same, for inline hooks that run right after a block() woke the core in
  /// a fresh quantum (lock grant, flag wait): re-establishes oldest-active
  /// via the order gate first. No-op unless the oracle runs overlapped.
  void oracle_resume_sync(CoreCtx& c);

  /// Empties the write buffer, charging WB/INV stall appropriately.
  void drain(CoreCtx& c);

  // Tracing helpers (all no-ops when tracer_ is null). trace_ctx stamps the
  // acting core's clock into the tracer before a hierarchy call so cache
  // instants carry the right timestamp; the span helpers close an op/sync
  // span opened at `start` at the core's current time.
  void trace_ctx(const CoreCtx& c);
  void trace_op(const CoreCtx& c, Cycle start, const char* name);
  void trace_op(const CoreCtx& c, Cycle start, const char* name,
                std::int64_t arg);
  void trace_sync(const CoreCtx& c, Cycle start, const char* name, SyncId id);
  /// Round trip to a sync variable's home plus controller service time.
  [[nodiscard]] Cycle sync_latency(const CoreCtx& c, SyncId id) const;
  void count_sync_traffic();

  /// Snapshots every core plus the wait-for graph. Must run before parked
  /// threads are released: teardown wipes the blocked states it reads.
  [[nodiscard]] HangReport build_hang_report(HangReport::Kind kind,
                                             Cycle at) const;

  HierarchyBase* hier_;
  SyncController* sync_;
  Cycle slack_;
  CoreCtx* running_ = nullptr;  ///< the currently dispatched core
  std::vector<std::unique_ptr<CoreCtx>> ctxs_;
  /// Ready cores not currently running, as a min-heap on (time, id) — the
  /// same order the legacy O(cores) scan produces, in O(log cores).
  std::vector<std::pair<Cycle, CoreId>> heap_;
  /// Counting (not binary): during an abort teardown every released core
  /// posts here once; the excess is drained at the next run() start.
  /// Legacy mode only — fibers hand control back via main_ctx_.
  std::counting_semaphore<> engine_sem_{0};
  /// run()'s own context while a fiber executes (fiber mode only).
  ucontext_t main_ctx_{};
  // AddressSanitizer bookkeeping for the engine thread's own stack, so
  // fiber switches back to run() can be annotated (unused otherwise).
  void* main_asan_fake_ = nullptr;
  const void* main_stack_bottom_ = nullptr;
  std::size_t main_stack_size_ = 0;
  Tracer* tracer_ = nullptr;
  CoherenceOracle* oracle_ = nullptr;
  ResilienceManager* resil_ = nullptr;
  /// Fail-stop config (set_fail_cycles): per-core halt cycles, 0 = never.
  std::vector<Cycle> fail_cycles_;
  bool fail_armed_ = false;
  std::function<void(CoreId, Cycle)> fail_cb_;
  bool legacy_ = false;
  /// Atomic: sharded workers and their fibers poll it lock-free; plain
  /// loads/stores elsewhere keep the single-thread paths unchanged.
  std::atomic<bool> abort_{false};
  bool watchdog_tripped_ = false;
  Cycle finish_time_ = 0;
  Cycle max_cycles_ = 0;  ///< 0 = no watchdog
  HangReport hang_report_;

  // --- Sharded-mode state (engine_sharded.cpp) ----------------------------
  int shard_threads_req_ = 0;   ///< requested via set_shard_threads
  bool sharded_active_ = false;  ///< true while run_sharded() executes
  bool shard_serialize_ = false;
  std::string shard_serialize_reason_;
  /// True while the attached oracle runs in deferred-apply overlap mode
  /// (sharded, not serialized): memory hooks buffer per quantum; sync hooks
  /// stay inline behind oracle_sync_point / oracle_resume_sync.
  bool oracle_overlap_ = false;
  /// One admission counter per shared-level bank (L3 slice / DRAM channel),
  /// padded to a cache line: concurrent quanta never contend on a count,
  /// and the strict admission order makes each sequence deterministic.
  struct BankGate {
    std::atomic<std::uint64_t> serial{0};
    char pad[64 - sizeof(std::atomic<std::uint64_t>)];
  };
  std::unique_ptr<BankGate[]> bank_gates_;
  int bank_gate_count_ = 0;
  int shard_count_ = 0;
  int last_shard_count_ = 0;
  std::unique_ptr<ShardRunner[]> runners_;
  std::vector<std::unique_ptr<ShardCtx>> shardctx_;
  /// Protects the ready heap, dispatch/retire transitions and the waiters
  /// count; everything the gates poll between quanta is atomic instead.
  std::mutex shard_mu_;
  std::condition_variable shard_cv_;
  int cv_waiters_ = 0;
  /// Lock-free mirror of the heap top for the idle-worker spin loop:
  /// owning shard (-1 = empty heap) and its dispatch time.
  std::atomic<int> shard_top_shard_{-1};
  std::atomic<Cycle> shard_top_time_{0};
  std::uint64_t next_seq_ = 0;
  int unfinished_cores_ = 0;
  bool shard_deadlock_ = false;
  std::exception_ptr shard_infra_error_;
  void* main_tsan_fiber_ = nullptr;
  /// The core whose fiber this worker thread is currently inside (null on
  /// the worker's scheduler context and on non-sharded runs). Lets the
  /// hierarchy's shared-access gate — whose deepest call sites have no
  /// CoreId in scope — reach the acting core's gate state.
  static inline thread_local CoreCtx* t_active_core_ = nullptr;
};

}  // namespace hic
