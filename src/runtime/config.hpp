// Experiment configurations (paper Table II).
#pragma once

#include <optional>
#include <string>

#include "core/incoherent.hpp"

namespace hic {

enum class Config {
  // Intra-block experiments (upper Table II).
  Hcc,         ///< hardware cache coherence (directory MESI)
  Base,        ///< WB ALL and INV ALL at every annotation
  BaseMeb,     ///< Base plus the MEB (B+M)
  BaseIeb,     ///< Base plus the IEB (B+I)
  BaseMebIeb,  ///< Base plus both buffers (B+M+I)
  // Inter-block experiments (lower Table II).
  InterHcc,    ///< hierarchical directory MESI
  InterBase,   ///< WB ALL to L3; INV ALL from L2
  InterAddr,   ///< WB/INV of specific addresses, always global
  InterAddrL,  ///< level-adaptive WB_CONS / INV_PROD (Addr+L)
};

[[nodiscard]] constexpr bool is_coherent(Config c) {
  return c == Config::Hcc || c == Config::InterHcc;
}

[[nodiscard]] constexpr bool is_inter_block(Config c) {
  return c == Config::InterHcc || c == Config::InterBase ||
         c == Config::InterAddr || c == Config::InterAddrL;
}

[[nodiscard]] constexpr IncoherentOptions buffer_options(Config c) {
  IncoherentOptions o;
  o.use_meb = c == Config::BaseMeb || c == Config::BaseMebIeb;
  o.use_ieb = c == Config::BaseIeb || c == Config::BaseMebIeb;
  return o;
}

/// How Model-2 epoch directives translate into instructions.
enum class InterPolicy {
  NotApplicable,  ///< coherent machine: no instructions at all
  AllGlobal,      ///< InterBase: WB ALL to L3 / INV ALL from L2
  AddrGlobal,     ///< InterAddr: address ranges, always global
  AddrAdaptive,   ///< InterAddrL: WB_CONS / INV_PROD via the ThreadMap
};

[[nodiscard]] constexpr InterPolicy inter_policy(Config c) {
  switch (c) {
    case Config::InterBase: return InterPolicy::AllGlobal;
    case Config::InterAddr: return InterPolicy::AddrGlobal;
    case Config::InterAddrL: return InterPolicy::AddrAdaptive;
    default: return InterPolicy::NotApplicable;
  }
}

/// Parses a Table II label ("HCC", "B+M+I", "Addr+L", ...). The label sets
/// for the intra- and inter-block experiments overlap ("HCC", "Base"), so
/// the caller states which family it wants. Shared by the hicsim_run CLI and
/// the campaign spec parser; nullopt for unknown labels.
[[nodiscard]] inline std::optional<Config> config_from_string(
    const std::string& name, bool inter_block) {
  struct Entry {
    const char* name;
    Config cfg;
  };
  static constexpr Entry kIntra[] = {
      {"HCC", Config::Hcc},          {"Base", Config::Base},
      {"B+M", Config::BaseMeb},      {"B+I", Config::BaseIeb},
      {"B+M+I", Config::BaseMebIeb},
  };
  static constexpr Entry kInter[] = {
      {"HCC", Config::InterHcc},
      {"Base", Config::InterBase},
      {"Addr", Config::InterAddr},
      {"Addr+L", Config::InterAddrL},
  };
  if (inter_block) {
    for (const auto& e : kInter)
      if (name == e.name) return e.cfg;
  } else {
    for (const auto& e : kIntra)
      if (name == e.name) return e.cfg;
  }
  return std::nullopt;
}

[[nodiscard]] inline std::string to_string(Config c) {
  switch (c) {
    case Config::Hcc: return "HCC";
    case Config::Base: return "Base";
    case Config::BaseMeb: return "B+M";
    case Config::BaseIeb: return "B+I";
    case Config::BaseMebIeb: return "B+M+I";
    case Config::InterHcc: return "HCC";
    case Config::InterBase: return "Base";
    case Config::InterAddr: return "Addr";
    case Config::InterAddrL: return "Addr+L";
  }
  return "?";
}

}  // namespace hic
