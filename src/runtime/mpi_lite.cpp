#include "runtime/mpi_lite.hpp"

namespace hic {

MpiComm::MpiComm(Machine& m, int ranks, std::uint32_t max_msg_bytes)
    : m_(&m), ranks_(ranks), max_msg_bytes_(max_msg_bytes) {
  HIC_CHECK(ranks > 1 && ranks <= m.machine_config().total_cores());
  channels_.resize(static_cast<std::size_t>(ranks) *
                   static_cast<std::size_t>(ranks));
  send_seq_.assign(channels_.size(), 0);
  recv_seq_.assign(channels_.size(), 0);
  for (int s = 0; s < ranks; ++s) {
    for (int d = 0; d < ranks; ++d) {
      if (s == d) continue;
      Channel& ch = channel(s, d);
      ch.buf = m.mem().alloc(max_msg_bytes_, "mpi.ch", 64);
      ch.ready = m.make_flag(0);
      ch.done = m.make_flag(0);
    }
  }
  bcast_buf_.resize(static_cast<std::size_t>(ranks));
  bcast_seq_.assign(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    bcast_buf_[static_cast<std::size_t>(r)] =
        m.mem().alloc(max_msg_bytes_, "mpi.bcast", 64);
    bcast_ready_.push_back(m.make_flag(0));
    bcast_ack_.push_back(m.make_flag(0));
  }
}

void MpiComm::uncached_xfer(Thread& t, Addr a, std::uint32_t bytes) {
  const auto& topo = t.machine().hierarchy().topology();
  const auto& mc = t.machine().machine_config();
  const Addr line = align_down(a, mc.l1.line_bytes);
  // The buffer lives in the shared cache: L3 on multi-block machines.
  NodeId home;
  Cycle bank_rt;
  if (mc.multi_block()) {
    home = topo.l3_bank_node(topo.l3_bank_of(line));
    bank_rt = mc.l3_bank.rt_cycles;
  } else {
    home = topo.l2_bank_node(0, topo.l2_bank_of(line));
    bank_rt = mc.l2_bank.rt_cycles;
  }
  const std::uint64_t flits = topo.flits_for(bytes);
  t.compute(topo.round_trip(topo.core_node(t.tid()), home) + bank_rt + flits);
  t.machine().stats().traffic().add(TrafficKind::Sync, flits);
}

void MpiComm::send(Thread& t, int dst, std::span<const std::byte> data) {
  HIC_CHECK(t.tid() < ranks_ && dst < ranks_ && dst != t.tid());
  HIC_CHECK_MSG(data.size() <= max_msg_bytes_, "message exceeds channel size");
  const int src = t.tid();
  Channel& ch = channel(src, dst);
  std::uint64_t& seq = send_seq_[static_cast<std::size_t>(src) *
                                     static_cast<std::size_t>(ranks_) +
                                 static_cast<std::size_t>(dst)];
  ++seq;
  // Flow control: wait until the receiver has drained the previous message.
  if (seq > 1) t.services().flag_wait(ch.done.id, seq - 1);
  // Uncacheable write of the payload.
  m_->mem().shadow_write_raw(ch.buf, data.data(), data.size());
  uncached_xfer(t, ch.buf, static_cast<std::uint32_t>(data.size()));
  t.services().flag_set(ch.ready.id, seq);
}

void MpiComm::recv(Thread& t, int src, std::span<std::byte> out) {
  HIC_CHECK(t.tid() < ranks_ && src < ranks_ && src != t.tid());
  const int dst = t.tid();
  Channel& ch = channel(src, dst);
  std::uint64_t& seq = recv_seq_[static_cast<std::size_t>(src) *
                                     static_cast<std::size_t>(ranks_) +
                                 static_cast<std::size_t>(dst)];
  ++seq;
  t.services().flag_wait(ch.ready.id, seq);
  uncached_xfer(t, ch.buf, static_cast<std::uint32_t>(out.size()));
  m_->mem().shadow_read_raw(ch.buf, out.data(), out.size());
  t.services().flag_set(ch.done.id, seq);
}

MpiComm::Request MpiComm::isend(Thread& t, int dst,
                                std::span<const std::byte> data) {
  HIC_CHECK(t.tid() < ranks_ && dst < ranks_ && dst != t.tid());
  HIC_CHECK_MSG(data.size() <= max_msg_bytes_, "message exceeds channel size");
  Request req;
  req.is_send = true;
  req.peer = dst;
  req.send_data = data;
  const int src = t.tid();
  std::uint64_t& seq = send_seq_[static_cast<std::size_t>(src) *
                                     static_cast<std::size_t>(ranks_) +
                                 static_cast<std::size_t>(dst)];
  req.seq = ++seq;
  (void)test(t, req);  // start immediately if the channel is free
  return req;
}

MpiComm::Request MpiComm::irecv(Thread& t, int src,
                                std::span<std::byte> out) {
  HIC_CHECK(t.tid() < ranks_ && src < ranks_ && src != t.tid());
  Request req;
  req.is_send = false;
  req.peer = src;
  req.recv_data = out;
  const int dst = t.tid();
  std::uint64_t& seq = recv_seq_[static_cast<std::size_t>(src) *
                                     static_cast<std::size_t>(ranks_) +
                                 static_cast<std::size_t>(dst)];
  req.seq = ++seq;
  (void)test(t, req);
  return req;
}

bool MpiComm::test(Thread& t, Request& req) {
  if (req.completed) return true;
  const auto& sync = t.machine().sync();
  if (req.is_send) {
    Channel& ch = channel(t.tid(), req.peer);
    // Channel free once the receiver has drained the previous message.
    if (req.seq > 1 && sync.flag_value(ch.done.id) < req.seq - 1)
      return false;
    m_->mem().shadow_write_raw(ch.buf, req.send_data.data(),
                               req.send_data.size());
    uncached_xfer(t, ch.buf, static_cast<std::uint32_t>(req.send_data.size()));
    t.services().flag_set(ch.ready.id, req.seq);
  } else {
    Channel& ch = channel(req.peer, t.tid());
    if (sync.flag_value(ch.ready.id) < req.seq) return false;
    uncached_xfer(t, ch.buf, static_cast<std::uint32_t>(req.recv_data.size()));
    m_->mem().shadow_read_raw(ch.buf, req.recv_data.data(),
                              req.recv_data.size());
    t.services().flag_set(ch.done.id, req.seq);
  }
  req.completed = true;
  return true;
}

void MpiComm::wait(Thread& t, Request& req) {
  if (req.completed) return;
  if (req.is_send) {
    Channel& ch = channel(t.tid(), req.peer);
    if (req.seq > 1) t.services().flag_wait(ch.done.id, req.seq - 1);
  } else {
    Channel& ch = channel(req.peer, t.tid());
    t.services().flag_wait(ch.ready.id, req.seq);
  }
  const bool done = test(t, req);
  HIC_CHECK_MSG(done, "request not completable after its flag fired");
}

void MpiComm::bcast(Thread& t, int root, std::span<std::byte> data) {
  HIC_CHECK(t.tid() < ranks_ && root < ranks_);
  HIC_CHECK_MSG(data.size() <= max_msg_bytes_, "message exceeds channel size");
  const auto r = static_cast<std::size_t>(root);
  const std::uint64_t seq = ++bcast_seq_[static_cast<std::size_t>(t.tid())];
  if (t.tid() == root) {
    // One write serves every receiver (no per-recipient copies).
    if (seq > 1)
      t.services().flag_wait(bcast_ack_[r].id,
                             (seq - 1) * static_cast<std::uint64_t>(ranks_ - 1));
    m_->mem().shadow_write_raw(bcast_buf_[r], data.data(), data.size());
    uncached_xfer(t, bcast_buf_[r], static_cast<std::uint32_t>(data.size()));
    t.services().flag_set(bcast_ready_[r].id, seq);
  } else {
    t.services().flag_wait(bcast_ready_[r].id, seq);
    uncached_xfer(t, bcast_buf_[r], static_cast<std::uint32_t>(data.size()));
    m_->mem().shadow_read_raw(bcast_buf_[r], data.data(), data.size());
    t.services().flag_add(bcast_ack_[r].id, 1);
  }
}

}  // namespace hic
