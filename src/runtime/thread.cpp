#include "runtime/thread.hpp"

namespace hic {

Thread::Thread(Machine& m, CoreServices& svc, int nthreads)
    : m_(&m),
      svc_(&svc),
      nthreads_(nthreads),
      coherent_(is_coherent(m.config())),
      inter_(is_inter_block(m.config())),
      policy_(inter_policy(m.config())),
      wb_level_(is_inter_block(m.config()) ? Level::L3 : Level::L2),
      inv_level_(is_inter_block(m.config()) ? Level::L2 : Level::L1),
      rng_(0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(svc.core()) + 1)) {}

bool Thread::elide_wb(AnnoSite site) {
  FaultPlan& p = m_->fault_plan();
  return !p.empty() && p.should_elide_wb(svc_->core(), site);
}

bool Thread::elide_inv(AnnoSite site) {
  FaultPlan& p = m_->fault_plan();
  return !p.empty() && p.should_elide_inv(svc_->core(), site);
}

void Thread::barrier(Machine::Barrier b) {
  ++m_->stats().ops().anno_barriers;
  if (!coherent_ && !elide_wb(AnnoSite::BarrierWb)) svc_->wb_all(wb_level_);
  svc_->barrier(b.id);
  if (!coherent_ && !elide_inv(AnnoSite::BarrierInv)) svc_->inv_all(inv_level_);
}

void Thread::barrier_block(Machine::Barrier b) {
  ++m_->stats().ops().anno_barriers;
  if (!coherent_ && !elide_wb(AnnoSite::BarrierBlockWb))
    svc_->wb_all(Level::L2);
  svc_->barrier(b.id);
  if (!coherent_ && !elide_inv(AnnoSite::BarrierBlockInv))
    svc_->inv_all(Level::L1);
}

void Thread::barrier_refined(Machine::Barrier b,
                             std::span<const AddrRange> consumed) {
  ++m_->stats().ops().anno_barriers;
  if (!coherent_ && !elide_wb(AnnoSite::BarrierWb)) svc_->wb_all(wb_level_);
  svc_->barrier(b.id);
  if (!coherent_ && !elide_inv(AnnoSite::BarrierRefinedInv)) {
    for (const AddrRange& r : consumed) {
      if (!r.empty()) svc_->inv_range(r, inv_level_);
    }
  }
}

void Thread::barrier_refined(Machine::Barrier b,
                             std::span<const AddrRange> produced,
                             std::span<const AddrRange> consumed) {
  ++m_->stats().ops().anno_barriers;
  if (!coherent_ && !elide_wb(AnnoSite::BarrierRefinedWb)) {
    for (const AddrRange& r : produced) {
      if (!r.empty()) svc_->wb_range(r, wb_level_);
    }
  }
  svc_->barrier(b.id);
  if (!coherent_ && !elide_inv(AnnoSite::BarrierRefinedInv)) {
    for (const AddrRange& r : consumed) {
      if (!r.empty()) svc_->inv_range(r, inv_level_);
    }
  }
}

void Thread::lock(Machine::Lock l) {
  ++m_->stats().ops().anno_critical;
  if (!coherent_) {
    if (l.occ) {
      // OCC (§IV-A1): data produced before the critical section may be
      // consumed by a later lock holder after it leaves the critical
      // section — publish everything written so far.
      ++m_->stats().ops().anno_occ;
      if (!elide_wb(AnnoSite::OccAcquireWb)) svc_->wb_all(wb_level_);
    }
    // Intra-block: the INV side sits immediately *before* the acquire so it
    // does not lengthen the critical section (paper §IV-A1). That is safe
    // only because it touches the *private* L1, whose state cannot change
    // while this core waits. With the IEB enabled this merely arms lazy
    // per-read invalidation.
    if (!inter_ && !elide_inv(AnnoSite::CsEnterInv)) svc_->cs_enter();
  }
  svc_->lock(l.id);
  if (!coherent_ && inter_) {
    // Inter-block: the critical section's data may sit stale in the
    // *shared* block L2, which other cores refill while this core waits for
    // the lock — so the invalidation must follow the acquire. When the
    // compiler named the protected data, invalidate just that; when every
    // participant is block-local, the previous holder published to this
    // block's L2, so only the private L1 needs invalidating.
    if (!elide_inv(AnnoSite::LockInterInv)) {
      const Level from = l.block_local ? Level::L1 : Level::L2;
      if (l.data.empty()) {
        svc_->inv_all(from);
      } else {
        svc_->inv_range(l.data, from);
      }
    }
  }
}

void Thread::unlock(Machine::Lock l) {
  if (!coherent_) {
    // WB of the critical section's writes (MEB-directed or WB ALL); across
    // blocks the next holder may be anywhere, so publish to the L3 — just
    // the protected data when the compiler named it, and only to the block
    // L2 when every participant is block-local.
    if (!inter_) {
      if (!elide_wb(AnnoSite::CsExitWb)) svc_->cs_exit();
    } else if (!elide_wb(AnnoSite::UnlockInterWb)) {
      const Level to = l.block_local ? Level::L2 : Level::L3;
      if (l.data.empty()) {
        svc_->wb_all(to);
      } else {
        svc_->wb_range(l.data, to);
      }
    }
  }
  svc_->unlock(l.id);
  if (!coherent_ && l.occ && !elide_inv(AnnoSite::OccReleaseInv)) {
    // OCC: data produced by earlier lock holders outside their critical
    // sections may now be consumed — refresh our view.
    svc_->inv_all(inv_level_);
  }
}

void Thread::flag_set(Machine::Flag f, std::uint64_t value) {
  ++m_->stats().ops().anno_flag;
  if (!coherent_ && !elide_wb(AnnoSite::FlagSetWb)) svc_->wb_all(wb_level_);
  svc_->flag_set(f.id, value);
}

void Thread::flag_wait(Machine::Flag f, std::uint64_t expect) {
  ++m_->stats().ops().anno_flag;
  svc_->flag_wait(f.id, expect);
  if (!coherent_ && !elide_inv(AnnoSite::FlagWaitInv))
    svc_->inv_all(inv_level_);
}

std::uint64_t Thread::flag_add(Machine::Flag f, std::uint64_t delta) {
  ++m_->stats().ops().anno_flag;
  if (!coherent_ && !elide_wb(AnnoSite::FlagAddWb)) svc_->wb_all(wb_level_);
  return svc_->flag_add(f.id, delta);
}

void Thread::acquire_owned(Machine::Lock l, AddrRange region) {
  ++m_->stats().ops().anno_critical;
  svc_->lock(l.id);
  // INV after the acquire: the previous owner may have run on any core, so
  // this core's private copy of the transferred region is suspect. Ranged —
  // everything else this thread caches stays valid (the whole point of the
  // ownership-transfer protocol versus the blanket CS annotations).
  if (!coherent_ && !region.empty() && !elide_inv(AnnoSite::KvAcquireInv))
    svc_->inv_range(region, inv_level_);
}

void Thread::release_owned(Machine::Lock l, AddrRange region) {
  // WB of exactly the transferred region before the release publishes this
  // owner's writes for whichever core acquires ownership next.
  if (!coherent_ && !region.empty() && !elide_wb(AnnoSite::KvReleaseWb))
    svc_->wb_range(region, wb_level_);
  svc_->unlock(l.id);
}

bool Thread::try_acquire_owned(Machine::Lock l, AddrRange region) {
  if (!svc_->try_lock(l.id)) return false;
  ++m_->stats().ops().anno_critical;
  // Same ranged INV as acquire_owned: the previous owner may have run on
  // any core, so the private copy of the transferred region is suspect.
  if (!coherent_ && !region.empty() && !elide_inv(AnnoSite::KvAcquireInv))
    svc_->inv_range(region, inv_level_);
  return true;
}

bool Thread::flag_try_wait_ranged(Machine::Flag f, std::uint64_t expect,
                                  std::span<const InvDirective> consumed) {
  if (!svc_->flag_try_wait(f.id, expect)) return false;
  ++m_->stats().ops().anno_flag;
  if (!coherent_ && !consumed.empty() &&
      !elide_inv(AnnoSite::PipeConsumeInv)) {
    for (const InvDirective& d : consumed)
      if (!d.range.empty()) svc_->inv_range(d.range, inv_level_);
  }
  return true;
}

void Thread::flag_set_ranged(Machine::Flag f, std::uint64_t value,
                             std::span<const WbDirective> produced) {
  ++m_->stats().ops().anno_flag;
  // Only consult the mutation harness when there is an annotation to elide:
  // a directive-free call is a pure control edge (the pipeline's credit
  // return), and eliding nothing must not count as a fired fault.
  if (!coherent_ && !produced.empty() &&
      !elide_wb(AnnoSite::PipeProduceWb)) {
    for (const WbDirective& d : produced)
      if (!d.range.empty()) svc_->wb_range(d.range, wb_level_);
  }
  svc_->flag_set(f.id, value);
}

void Thread::flag_wait_ranged(Machine::Flag f, std::uint64_t expect,
                              std::span<const InvDirective> consumed) {
  ++m_->stats().ops().anno_flag;
  svc_->flag_wait(f.id, expect);
  if (!coherent_ && !consumed.empty() &&
      !elide_inv(AnnoSite::PipeConsumeInv)) {
    for (const InvDirective& d : consumed)
      if (!d.range.empty()) svc_->inv_range(d.range, inv_level_);
  }
}

void Thread::epoch_produce(std::span<const WbDirective> dirs) {
  if (policy_ != InterPolicy::NotApplicable &&
      elide_wb(AnnoSite::EpochProduceWb)) {
    return;
  }
  switch (policy_) {
    case InterPolicy::NotApplicable:
      return;
    case InterPolicy::AllGlobal:
      svc_->wb_all(Level::L3);
      return;
    case InterPolicy::AddrGlobal:
      for (const auto& d : dirs) svc_->wb_range(d.range, Level::L3);
      return;
    case InterPolicy::AddrAdaptive:
      for (const auto& d : dirs) {
        if (d.consumer == kUnknownThread) {
          svc_->wb_range(d.range, Level::L3);
        } else {
          svc_->wb_cons(d.range, d.consumer);
        }
      }
      return;
  }
}

void Thread::epoch_consume(std::span<const InvDirective> dirs) {
  if (policy_ != InterPolicy::NotApplicable &&
      elide_inv(AnnoSite::EpochConsumeInv)) {
    return;
  }
  switch (policy_) {
    case InterPolicy::NotApplicable:
      return;
    case InterPolicy::AllGlobal:
      svc_->inv_all(Level::L2);
      return;
    case InterPolicy::AddrGlobal:
      for (const auto& d : dirs) svc_->inv_range(d.range, Level::L2);
      return;
    case InterPolicy::AddrAdaptive:
      for (const auto& d : dirs) {
        if (d.producer == kUnknownThread) {
          svc_->inv_range(d.range, Level::L2);
        } else {
          svc_->inv_prod(d.range, d.producer);
        }
      }
      return;
  }
}

void Thread::epoch_produce_all(ThreadId consumer) {
  if (policy_ != InterPolicy::NotApplicable &&
      elide_wb(AnnoSite::EpochProduceAllWb)) {
    return;
  }
  switch (policy_) {
    case InterPolicy::NotApplicable:
      return;
    case InterPolicy::AllGlobal:
    case InterPolicy::AddrGlobal:
      svc_->wb_all(Level::L3);
      return;
    case InterPolicy::AddrAdaptive:
      svc_->wb_cons_all(consumer);
      return;
  }
}

void Thread::epoch_consume_all(ThreadId producer) {
  if (policy_ != InterPolicy::NotApplicable &&
      elide_inv(AnnoSite::EpochConsumeAllInv)) {
    return;
  }
  switch (policy_) {
    case InterPolicy::NotApplicable:
      return;
    case InterPolicy::AllGlobal:
    case InterPolicy::AddrGlobal:
      svc_->inv_all(Level::L2);
      return;
    case InterPolicy::AddrAdaptive:
      svc_->inv_prod_all(producer);
      return;
  }
}

void Thread::epoch_barrier(Machine::Barrier b,
                           std::span<const WbDirective> wb,
                           std::span<const InvDirective> inv) {
  epoch_produce(wb);
  svc_->barrier(b.id);
  epoch_consume(inv);
}

}  // namespace hic
