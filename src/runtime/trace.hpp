// Trace-driven replay: run the simulator from a memory-access trace instead
// of an execution-driven workload.
//
// Format: one event per line, `#` starts a comment. Addresses are byte
// offsets into a single data region the replayer allocates.
//
//   <tid> R  <addr> <bytes>          load
//   <tid> W  <addr> <bytes>          store (stores the event's line number)
//   <tid> C  <cycles>                compute
//   <tid> B  <barrier-id>            annotated barrier
//   <tid> L  <lock-id>               annotated lock acquire
//   <tid> U  <lock-id>               annotated lock release
//   <tid> WB <addr> <bytes> [L2|L3]  explicit writeback of a range
//   <tid> INV <addr> <bytes> [L1|L2] explicit self-invalidation
//
// Events of one thread replay in order; threads interleave under the
// engine's usual deterministic scheduling. Barriers and locks are declared
// automatically from the IDs used.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "runtime/thread.hpp"

namespace hic {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    Read,
    Write,
    Compute,
    Barrier,
    Lock,
    Unlock,
    Wb,
    Inv
  };
  Kind kind = Kind::Compute;
  ThreadId tid = 0;
  Addr addr = 0;           ///< region-relative
  std::uint32_t bytes = 0;
  Cycle cycles = 0;        ///< Compute
  int sync_id = 0;         ///< Barrier / Lock / Unlock
  Level level = Level::L2; ///< Wb target / Inv (stored as given)
  std::uint64_t value = 0; ///< Write payload (the trace line number)
};

class TraceProgram {
 public:
  /// Parses a trace; throws CheckFailure with a line number on bad input.
  static TraceProgram parse(std::istream& in);
  static TraceProgram parse_string(const std::string& text);

  [[nodiscard]] int num_threads() const { return num_threads_; }
  [[nodiscard]] std::size_t num_events() const { return events_.size(); }
  [[nodiscard]] std::uint64_t region_bytes() const { return region_bytes_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// Replays the trace on a machine; returns the execution time. The data
  /// region is allocated in the machine's memory and zero-initialized;
  /// `region_base` (optional out) reports where it landed.
  Cycle replay(Machine& m, Addr* region_base = nullptr) const;

 private:
  std::vector<TraceEvent> events_;
  int num_threads_ = 0;
  int num_barriers_ = 0;
  int num_locks_ = 0;
  std::uint64_t region_bytes_ = 0;
};

}  // namespace hic
