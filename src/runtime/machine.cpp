#include "runtime/machine.hpp"

#include "hierarchy/mesi.hpp"
#include "obs/tracer.hpp"
#include "runtime/thread.hpp"
#include "verify/oracle.hpp"

namespace hic {

namespace {
std::unique_ptr<HierarchyBase> build_hierarchy(const MachineConfig& mc,
                                               Config cfg, GlobalMemory& gmem,
                                               SimStats& stats) {
  if (is_coherent(cfg))
    return std::make_unique<MesiHierarchy>(mc, gmem, stats);
  return std::make_unique<IncoherentHierarchy>(mc, gmem, stats,
                                               buffer_options(cfg));
}
}  // namespace

Machine::Machine(const MachineConfig& mc, Config cfg)
    : mc_(mc),
      cfg_(cfg),
      stats_(mc.total_cores()),
      hier_(build_hierarchy(mc, cfg, gmem_, stats_)),
      sync_(mc.total_cores()),
      engine_(*hier_, sync_, mc.sim_slack_cycles) {
  HIC_CHECK_MSG(is_inter_block(cfg) == mc.multi_block(),
                "config " << to_string(cfg)
                          << " does not match the machine's block count");
  hier_->set_fault_plan(&fault_plan_);
  engine_.set_max_cycles(mc.watchdog_max_cycles);
  engine_.set_legacy_scheduler(mc.legacy_scheduler);
}

IncoherentHierarchy* Machine::incoherent() {
  return dynamic_cast<IncoherentHierarchy*>(hier_.get());
}

void Machine::set_tracer(Tracer* t) {
  engine_.set_tracer(t);
  hier_->set_tracer(t);
  if (t != nullptr && t->options().sample_cycles > 0 &&
      t->counters().size() == 0) {
    register_sim_stats(t->counters(), stats_);
  }
}

void Machine::set_oracle(CoherenceOracle* o) {
  engine_.set_oracle(o);
  hier_->set_oracle(o);
  if (o != nullptr) o->bind(mc_, &stats_, &fault_plan_, hier_->coherent());
}

void Machine::enable_recovery(const ResilOptions& opts) {
  IncoherentHierarchy* inc = incoherent();
  if (inc == nullptr) return;  // hardware coherence already retries
  resil_ = std::make_unique<ResilienceManager>(opts);
  resil_->attach(&fault_plan_, mc_.cores_per_block);
  resil_->set_quarantine_cb(
      [inc](CoreId c, Addr line) { return inc->quarantine_l1_way(c, line); });
  resil_->set_degrade_cb([inc](int block) { return inc->degrade_block(block); });
  resil_->set_scrub_cb([inc](CoreId c, Addr line) { inc->scrub_line(c, line); });
  hier_->set_resil(resil_.get());
  engine_.set_resil(resil_.get());
}

NodeId Machine::next_sync_home() {
  const auto& topo = hier_->topology();
  const int k = sync_homes_issued_++;
  // Sync variables live in shared-cache controllers: the L3 banks on a
  // multi-block machine, the L2 banks otherwise.
  if (mc_.multi_block()) return topo.l3_bank_node(k % mc_.l3_banks);
  return topo.l2_bank_node(0, k % mc_.cores_per_block);
}

Machine::Barrier Machine::make_barrier(int participants) {
  return Barrier{sync_.declare_barrier(participants, next_sync_home())};
}

Machine::Lock Machine::make_lock(bool outside_cs_communication,
                                 AddrRange protected_data, bool block_local) {
  return Lock{sync_.declare_lock(next_sync_home()), outside_cs_communication,
              protected_data, block_local};
}

Machine::Flag Machine::make_flag(std::uint64_t initial) {
  return Flag{sync_.declare_flag(next_sync_home(), initial)};
}

void Machine::run(int nthreads, const std::function<void(Thread&)>& body) {
  HIC_CHECK(nthreads > 0 && nthreads <= mc_.total_cores());
  for (ThreadId t = 0; t < nthreads; ++t)
    hier_->map_thread(t, static_cast<CoreId>(t));

  std::vector<Engine::CoreBody> bodies;
  bodies.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    bodies.push_back([this, nthreads, &body](CoreServices& svc) {
      Thread t(*this, svc, nthreads);
      body(t);
    });
  }
  engine_.run(std::move(bodies));

  if (resil_ != nullptr) resil_->flush(stats_);
  if (!fault_plan_.empty()) {
    // Classify every injected fault that was not already caught as a stale
    // read: still visible somewhere in the hierarchy -> detected; repaired
    // by later traffic -> tolerated. Nothing stays silent.
    IncoherentHierarchy* inc = incoherent();
    fault_plan_.reconcile(stats_, [inc](const FaultRecord& r) {
      return inc != nullptr && inc->fault_visible(r);
    });
  }
}

VerifyReader::VerifyReader(Machine& m) : m_(&m) {
  m_->hierarchy().inv_all(
      0, m.machine_config().multi_block() ? Level::L2 : Level::L1);
}

}  // namespace hic
