#include "runtime/machine.hpp"

#include "hierarchy/mesi.hpp"
#include "obs/tracer.hpp"
#include "runtime/thread.hpp"
#include "verify/oracle.hpp"

namespace hic {

namespace {
std::unique_ptr<HierarchyBase> build_hierarchy(const MachineConfig& mc,
                                               Config cfg, GlobalMemory& gmem,
                                               SimStats& stats) {
  if (is_coherent(cfg))
    return std::make_unique<MesiHierarchy>(mc, gmem, stats);
  return std::make_unique<IncoherentHierarchy>(mc, gmem, stats,
                                               buffer_options(cfg));
}
}  // namespace

Machine::Machine(const MachineConfig& mc, Config cfg)
    : mc_(mc),
      cfg_(cfg),
      stats_(mc.total_cores()),
      hier_(build_hierarchy(mc, cfg, gmem_, stats_)),
      sync_(mc.total_cores()),
      engine_(*hier_, sync_, mc.sim_slack_cycles) {
  HIC_CHECK_MSG(is_inter_block(cfg) == mc.multi_block(),
                "config " << to_string(cfg)
                          << " does not match the machine's block count");
  hier_->set_fault_plan(&fault_plan_);
  engine_.set_max_cycles(mc.watchdog_max_cycles);
  engine_.set_legacy_scheduler(mc.legacy_scheduler);
}

IncoherentHierarchy* Machine::incoherent() {
  return dynamic_cast<IncoherentHierarchy*>(hier_.get());
}

void Machine::set_tracer(Tracer* t) {
  engine_.set_tracer(t);
  hier_->set_tracer(t);
  if (t != nullptr && t->options().sample_cycles > 0 &&
      t->counters().size() == 0) {
    register_sim_stats(t->counters(), stats_);
  }
}

void Machine::set_oracle(CoherenceOracle* o) {
  engine_.set_oracle(o);
  hier_->set_oracle(o);
  if (o != nullptr) o->bind(mc_, &stats_, &fault_plan_, hier_->coherent());
}

void Machine::enable_recovery(const ResilOptions& opts) {
  IncoherentHierarchy* inc = incoherent();
  if (inc == nullptr) return;  // hardware coherence already retries
  resil_ = std::make_unique<ResilienceManager>(opts);
  resil_->attach(&fault_plan_, mc_.cores_per_block);
  resil_->set_quarantine_cb(
      [inc](CoreId c, Addr line) { return inc->quarantine_l1_way(c, line); });
  resil_->set_degrade_cb([inc](int block) { return inc->degrade_block(block); });
  resil_->set_scrub_cb([inc](CoreId c, Addr line) { inc->scrub_line(c, line); });
  hier_->set_resil(resil_.get());
  engine_.set_resil(resil_.get());
}

NodeId Machine::next_sync_home() {
  const auto& topo = hier_->topology();
  const int k = sync_homes_issued_++;
  // Sync variables live in shared-cache controllers: the L3 banks on a
  // multi-block machine, the L2 banks otherwise.
  if (mc_.multi_block()) return topo.l3_bank_node(k % mc_.l3_banks);
  return topo.l2_bank_node(0, k % mc_.cores_per_block);
}

Machine::Barrier Machine::make_barrier(int participants) {
  return Barrier{sync_.declare_barrier(participants, next_sync_home())};
}

Machine::Lock Machine::make_lock(bool outside_cs_communication,
                                 AddrRange protected_data, bool block_local) {
  return Lock{sync_.declare_lock(next_sync_home()), outside_cs_communication,
              protected_data, block_local};
}

Machine::Flag Machine::make_flag(std::uint64_t initial) {
  return Flag{sync_.declare_flag(next_sync_home(), initial)};
}

void Machine::arm_fail_stop() {
  std::vector<Cycle> cycles(static_cast<std::size_t>(mc_.total_cores()), 0);
  bool any = false;
  for (const FaultRule& r : fault_plan_.rule_configs()) {
    if (!is_fail_stop(r.kind)) continue;
    any = true;
    auto arm = [&](CoreId victim) {
      Cycle& at = cycles[static_cast<std::size_t>(victim)];
      at = at == 0 ? r.fail_cycle : std::min(at, r.fail_cycle);
    };
    if (r.kind == FaultKind::CoreFail) {
      HIC_CHECK_MSG(r.core < mc_.total_cores(),
                    "core-fail victim " << r.core
                                        << " out of range (machine has "
                                        << mc_.total_cores() << " cores)");
      arm(r.core);
    } else {
      HIC_CHECK_MSG(r.cluster < mc_.blocks,
                    "cluster-fail victim " << r.cluster
                                           << " out of range (machine has "
                                           << mc_.blocks << " blocks)");
      const CoreId lo = r.cluster * mc_.cores_per_block;
      for (CoreId c = lo; c < lo + mc_.cores_per_block; ++c) arm(c);
    }
  }
  if (!any) return;
  l2_discarded_.assign(static_cast<std::size_t>(mc_.blocks), false);
  l2_cluster_armed_.assign(static_cast<std::size_t>(mc_.blocks), false);
  l2_pending_.assign(static_cast<std::size_t>(mc_.blocks), 0);
  for (const FaultRule& r : fault_plan_.rule_configs())
    if (r.kind == FaultKind::ClusterFail)
      l2_cluster_armed_[static_cast<std::size_t>(r.cluster)] = true;
  for (CoreId c = 0; c < mc_.total_cores(); ++c)
    if (cycles[static_cast<std::size_t>(c)] != 0)
      ++l2_pending_[static_cast<std::size_t>(mc_.block_of(c))];
  engine_.set_fail_cycles(std::move(cycles));
  engine_.set_fail_callback(
      [this](CoreId core, Cycle cycle) { on_core_failed(core, cycle); });
}

void Machine::on_core_failed(CoreId core, Cycle cycle) {
  // Attribute the kill to the rule that armed this core's (earliest) halt
  // cycle; a tie between a core-fail and a cluster-fail rule goes to the
  // first in add order.
  FaultKind kind = FaultKind::CoreFail;
  Cycle best = 0;
  for (const FaultRule& r : fault_plan_.rule_configs()) {
    const bool covers =
        (r.kind == FaultKind::CoreFail && r.core == core) ||
        (r.kind == FaultKind::ClusterFail && r.cluster == mc_.block_of(core));
    if (!covers) continue;
    if (best == 0 || r.fail_cycle < best) {
      best = r.fail_cycle;
      kind = r.kind;
    }
  }
  std::uint64_t lost = 0;
  // HCC baseline: the hardware protocol owns the dirty lines, so a victim's
  // private state is not lost (lost_dirty stays 0); only the incoherent
  // hierarchy physically drops data with the core.
  if (IncoherentHierarchy* inc = incoherent()) {
    lost = inc->discard_core_l1(core);
    // The shared L2 is discarded only with the block's LAST armed victim:
    // until every victim is dead, cores logically before the fail cycle are
    // still writing back, and those writes belong to the pre-failure L2.
    const auto block = static_cast<std::size_t>(mc_.block_of(core));
    if (--l2_pending_[block] == 0 && l2_cluster_armed_[block] &&
        !l2_discarded_[block]) {
      l2_discarded_[block] = true;
      lost += inc->discard_block_l2(mc_.block_of(core));
    }
  }
  fault_plan_.record_core_fail(kind, core, cycle, lost);
}

void Machine::run(int nthreads, const std::function<void(Thread&)>& body) {
  HIC_CHECK(nthreads > 0 && nthreads <= mc_.total_cores());
  arm_fail_stop();
  for (ThreadId t = 0; t < nthreads; ++t)
    hier_->map_thread(t, static_cast<CoreId>(t));

  std::vector<Engine::CoreBody> bodies;
  bodies.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    bodies.push_back([this, nthreads, &body](CoreServices& svc) {
      Thread t(*this, svc, nthreads);
      body(t);
    });
  }
  engine_.run(std::move(bodies));

  // A cluster-armed block can finish the run with its L2 discard still
  // deferred when some armed victim completed its body before the fail
  // cycle (it was never killed, so l2_pending_ never drained). Every core
  // has stopped by now, so this flush point is logically after the failure;
  // the loss is attributed to the block's newest victim record. A block
  // with no victim record at all never saw its rule fire — leave it alone.
  if (IncoherentHierarchy* inc = incoherent()) {
    for (std::size_t b = 0; b < l2_cluster_armed_.size(); ++b) {
      if (!l2_cluster_armed_[b] || l2_discarded_[b]) continue;
      const auto& recs = fault_plan_.records();
      std::size_t last = recs.size();
      for (std::size_t i = 0; i < recs.size(); ++i)
        if (is_fail_stop(recs[i].kind) &&
            static_cast<std::size_t>(mc_.block_of(recs[i].core)) == b)
          last = i;
      if (last == recs.size()) continue;
      l2_discarded_[b] = true;
      fault_plan_.add_lost_dirty(
          last, inc->discard_block_l2(static_cast<int>(b)));
    }
  }

  if (resil_ != nullptr) resil_->flush(stats_);
  // Chaos-aware workloads classify each fail-stop victim's outcome from
  // host-side accounting before reconcile rules on the records.
  if (pre_reconcile_) pre_reconcile_();
  if (!fault_plan_.empty()) {
    // Classify every injected fault that was not already caught as a stale
    // read: still visible somewhere in the hierarchy -> detected; repaired
    // by later traffic -> tolerated. Nothing stays silent.
    IncoherentHierarchy* inc = incoherent();
    fault_plan_.reconcile(stats_, [inc](const FaultRecord& r) {
      return inc != nullptr && inc->fault_visible(r);
    });
  }
}

VerifyReader::VerifyReader(Machine& m) : m_(&m) {
  m_->hierarchy().inv_all(
      0, m.machine_config().multi_block() ? Level::L2 : Level::L1);
}

}  // namespace hic
