#include "runtime/trace.hpp"

#include <sstream>

namespace hic {

namespace {

Level parse_level(const std::string& s, int line_no) {
  if (s == "L1") return Level::L1;
  if (s == "L2") return Level::L2;
  if (s == "L3") return Level::L3;
  HIC_CHECK_MSG(false, "trace line " << line_no << ": bad level '" << s
                                     << "'");
  return Level::L2;
}

}  // namespace

TraceProgram TraceProgram::parse(std::istream& in) {
  TraceProgram prog;
  std::string line;
  int line_no = 0;
  std::uint64_t write_seq = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    ThreadId tid;
    std::string op;
    if (!(ls >> tid)) {
      // Only blank / comment-only lines may be skipped; a line with content
      // that fails to parse is an error, not a silent no-op.
      std::istringstream probe(line);
      std::string tok;
      HIC_CHECK_MSG(!(probe >> tok),
                    "trace line " << line_no
                                  << ": expected a numeric thread id, got '"
                                  << tok << "'");
      continue;
    }
    HIC_CHECK_MSG(static_cast<bool>(ls >> op),
                  "trace line " << line_no << ": missing op after thread id");
    HIC_CHECK_MSG(tid >= 0 && tid < 1024,
                  "trace line " << line_no << ": bad thread id " << tid);
    TraceEvent e;
    e.tid = tid;
    auto need_addr = [&](bool with_size) {
      HIC_CHECK_MSG(static_cast<bool>(ls >> e.addr),
                    "trace line " << line_no << ": missing address");
      // A negative offset wraps to a huge unsigned value; either way it is
      // out of range for a trace data region.
      HIC_CHECK_MSG(e.addr < (std::uint64_t{1} << 30),
                    "trace line " << line_no << ": address 0x" << std::hex
                                  << e.addr << std::dec
                                  << " out of range for the trace region");
      if (with_size) {
        HIC_CHECK_MSG(static_cast<bool>(ls >> e.bytes) && e.bytes > 0,
                      "trace line " << line_no << ": missing/zero size");
      }
      prog.region_bytes_ =
          std::max(prog.region_bytes_,
                   e.addr + std::max<std::uint64_t>(e.bytes, 1));
    };
    if (op == "R") {
      e.kind = TraceEvent::Kind::Read;
      need_addr(true);
      HIC_CHECK_MSG(e.bytes <= 8 && is_pow2(e.bytes) && e.addr % e.bytes == 0,
                    "trace line " << line_no
                                  << ": accesses must be naturally aligned "
                                     "and at most 8 bytes");
    } else if (op == "W") {
      e.kind = TraceEvent::Kind::Write;
      need_addr(true);
      HIC_CHECK_MSG(e.bytes <= 8 && is_pow2(e.bytes) && e.addr % e.bytes == 0,
                    "trace line " << line_no
                                  << ": accesses must be naturally aligned "
                                     "and at most 8 bytes");
      e.value = ++write_seq;
    } else if (op == "C") {
      e.kind = TraceEvent::Kind::Compute;
      long long cyc = 0;
      HIC_CHECK_MSG(static_cast<bool>(ls >> cyc) && cyc >= 0,
                    "trace line " << line_no
                                  << ": missing or negative cycle count");
      e.cycles = static_cast<Cycle>(cyc);
    } else if (op == "B") {
      e.kind = TraceEvent::Kind::Barrier;
      HIC_CHECK_MSG(static_cast<bool>(ls >> e.sync_id) && e.sync_id >= 0,
                    "trace line " << line_no << ": missing barrier id");
      prog.num_barriers_ = std::max(prog.num_barriers_, e.sync_id + 1);
    } else if (op == "L" || op == "U") {
      e.kind = op == "L" ? TraceEvent::Kind::Lock : TraceEvent::Kind::Unlock;
      HIC_CHECK_MSG(static_cast<bool>(ls >> e.sync_id) && e.sync_id >= 0,
                    "trace line " << line_no << ": missing lock id");
      prog.num_locks_ = std::max(prog.num_locks_, e.sync_id + 1);
    } else if (op == "WB" || op == "INV") {
      e.kind = op == "WB" ? TraceEvent::Kind::Wb : TraceEvent::Kind::Inv;
      need_addr(true);
      std::string lvl;
      if (ls >> lvl) {
        e.level = parse_level(lvl, line_no);
      } else {
        e.level = op == "WB" ? Level::L2 : Level::L1;
      }
    } else {
      HIC_CHECK_MSG(false,
                    "trace line " << line_no << ": unknown op '" << op << "'");
    }
    std::string extra;
    HIC_CHECK_MSG(!(ls >> extra), "trace line " << line_no
                                                << ": trailing token '"
                                                << extra << "'");
    prog.num_threads_ = std::max(prog.num_threads_, tid + 1);
    prog.events_.push_back(e);
  }
  HIC_CHECK_MSG(!prog.events_.empty(), "empty trace");
  return prog;
}

TraceProgram TraceProgram::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

Cycle TraceProgram::replay(Machine& m, Addr* region_base) const {
  HIC_CHECK_MSG(num_threads_ <= m.machine_config().total_cores(),
                "trace uses more threads than the machine has cores");
  const Addr base = m.mem().alloc(std::max<std::uint64_t>(region_bytes_, 8),
                                  "trace.region", 64);
  if (region_base != nullptr) *region_base = base;
  for (Addr off = 0; off < region_bytes_; off += 8) {
    m.mem().init(base + off, std::uint64_t{0});
  }

  std::vector<Machine::Barrier> barriers;
  for (int b = 0; b < num_barriers_; ++b)
    barriers.push_back(m.make_barrier(num_threads_));
  std::vector<Machine::Lock> locks;
  for (int l = 0; l < num_locks_; ++l) locks.push_back(m.make_lock());

  // Pre-split the event stream per thread (replay order within a thread is
  // trace order).
  std::vector<std::vector<const TraceEvent*>> per_thread(
      static_cast<std::size_t>(num_threads_));
  for (const TraceEvent& e : events_)
    per_thread[static_cast<std::size_t>(e.tid)].push_back(&e);

  m.run(num_threads_, [&](Thread& t) {
    for (const TraceEvent* e :
         per_thread[static_cast<std::size_t>(t.tid())]) {
      switch (e->kind) {
        case TraceEvent::Kind::Read: {
          std::uint64_t buf = 0;
          t.services().load(base + e->addr, e->bytes, &buf);
          break;
        }
        case TraceEvent::Kind::Write:
          t.services().store(base + e->addr, e->bytes, &e->value);
          break;
        case TraceEvent::Kind::Compute:
          t.compute(e->cycles);
          break;
        case TraceEvent::Kind::Barrier:
          t.barrier(barriers[static_cast<std::size_t>(e->sync_id)]);
          break;
        case TraceEvent::Kind::Lock:
          t.lock(locks[static_cast<std::size_t>(e->sync_id)]);
          break;
        case TraceEvent::Kind::Unlock:
          t.unlock(locks[static_cast<std::size_t>(e->sync_id)]);
          break;
        case TraceEvent::Kind::Wb:
          t.services().wb_range({base + e->addr, e->bytes}, e->level);
          break;
        case TraceEvent::Kind::Inv:
          t.services().inv_range({base + e->addr, e->bytes}, e->level);
          break;
      }
    }
  });
  return m.exec_cycles();
}

}  // namespace hic
