// Machine: one fully-assembled simulated system — global memory, the chosen
// hierarchy (incoherent with the configured buffers, or the MESI baseline),
// the synchronization controller, and the execution engine.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mem/global_memory.hpp"
#include "resil/resil.hpp"
#include "runtime/config.hpp"
#include "sim/engine.hpp"
#include "sync/sync_controller.hpp"

namespace hic {

class Thread;

class Machine {
 public:
  /// Handles to declared synchronization variables (sync-table entries).
  struct Barrier {
    SyncId id = -1;
  };
  struct Lock {
    SyncId id = -1;
    /// Outside-critical-section communication (paper §IV-A1, Figure 4d):
    /// the annotator adds a full WB before acquire and a full INV after
    /// release unless the programmer states there is no OCC.
    bool occ = false;
    /// Inter-block only: the shared data the critical section accesses.
    /// Model 2's compiler analysis names the variables inside a critical
    /// section, so the CS annotations can use address-ranged WB/INV instead
    /// of whole-cache operations; empty means unknown (fall back to ALL).
    AddrRange data{};
    /// Inter-block only: every thread that ever takes this lock runs in one
    /// block (e.g. the per-block phase of a hierarchical reduction), so the
    /// CS annotations can stay at the block level: INV of the private L1
    /// and WB to the shared L2, never touching the L3.
    bool block_local = false;
  };
  struct Flag {
    SyncId id = -1;
  };

  Machine(const MachineConfig& mc, Config cfg);

  [[nodiscard]] const MachineConfig& machine_config() const { return mc_; }
  [[nodiscard]] Config config() const { return cfg_; }
  [[nodiscard]] GlobalMemory& mem() { return gmem_; }
  [[nodiscard]] SimStats& stats() { return stats_; }
  [[nodiscard]] HierarchyBase& hierarchy() { return *hier_; }
  [[nodiscard]] SyncController& sync() { return sync_; }
  [[nodiscard]] Engine& engine() { return engine_; }

  /// Host-side execution knob: number of worker threads for the sharded
  /// engine (0 = single-thread direct handoff). Purely a wall-clock choice —
  /// simulated results are bit-identical either way — so unlike
  /// `legacy_scheduler` it is NOT a MachineConfig field and never reaches
  /// the campaign result digest.
  void set_shard_threads(int n) { engine_.set_shard_threads(n); }

  /// The fault-injection plan this machine runs under. Add rules before
  /// run(); afterwards the plan holds the per-fault detection records and
  /// run() has already reconciled them into stats().
  [[nodiscard]] FaultPlan& fault_plan() { return fault_plan_; }
  void add_fault_rule(const FaultRule& rule) { fault_plan_.add_rule(rule); }

  /// The armed fail-stop halt cycle of `core` (0 = none). This is the
  /// serving layer's failure detector: deterministic static config that
  /// models lease expiry with zero hidden state (`fail_cycle_of(c) != 0 &&
  /// now >= fail_cycle_of(c)` means the peer is dead). Valid once run() has
  /// armed the engine; before that it returns 0.
  [[nodiscard]] Cycle fail_cycle_of(CoreId core) const {
    return engine_.fail_cycle_of(core);
  }

  /// Hook run after the engine finishes but before fault reconciliation.
  /// Chaos-aware workloads classify each victim's FailOutcome here (from
  /// host-side accounting); reconcile forces anything unclassified to
  /// Failed, never silent.
  void set_pre_reconcile(std::function<void()> hook) {
    pre_reconcile_ = std::move(hook);
  }

  /// The incoherent hierarchy, or nullptr under HCC.
  [[nodiscard]] IncoherentHierarchy* incoherent();

  /// Attaches an event tracer (nullptr = off; see obs/tracer.hpp) to the
  /// engine and the hierarchy, and — when the tracer samples counters —
  /// registers every stats report field with its counter registry. The
  /// tracer must outlive this machine's run() calls.
  void set_tracer(Tracer* t);

  /// Attaches the coherence oracle (nullptr = off; see verify/oracle.hpp)
  /// to the engine and the hierarchy, and binds it to this machine's
  /// configuration, stats and fault plan. Must be called before run() and
  /// the oracle must outlive it.
  void set_oracle(CoherenceOracle* o);

  /// Enables the recovery subsystem (src/resil): ECC correction + scrubbing
  /// for corrupt-line faults, reliable WB/INV delivery for drop faults, and
  /// graceful way/cluster degradation. Call before run(). Off by default —
  /// without this call every resil hook is a null-pointer test and golden
  /// stats are bit-identical. No-op on the coherent baseline (its hardware
  /// protocol already retries, and no fault hooks fire there).
  void enable_recovery(const ResilOptions& opts = {});
  /// The recovery manager, or nullptr when recovery is not enabled.
  [[nodiscard]] ResilienceManager* resil() { return resil_.get(); }

  Barrier make_barrier(int participants);
  Lock make_lock(bool outside_cs_communication = false,
                 AddrRange protected_data = {}, bool block_local = false);
  Flag make_flag(std::uint64_t initial = 0);

  /// Runs `nthreads` copies of `body`, thread i pinned to core i (the paper
  /// assumes a fixed 1:1 mapping with no migration). Fills the ThreadMap.
  void run(int nthreads, const std::function<void(Thread&)>& body);

  /// Execution time of the last run (slowest core's finishing cycle).
  [[nodiscard]] Cycle exec_cycles() const { return engine_.finish_time(); }

 private:
  [[nodiscard]] NodeId next_sync_home();
  /// Scans the fault plan for core-fail / cluster-fail rules and arms the
  /// engine's per-core halt cycles + kill callback. Called by run().
  void arm_fail_stop();
  /// Kill callback (runs on the victim's fiber): discards the victim's
  /// dirty lines and records the fault.
  void on_core_failed(CoreId core, Cycle cycle);

  MachineConfig mc_;
  Config cfg_;
  GlobalMemory gmem_;
  SimStats stats_;
  FaultPlan fault_plan_;
  std::unique_ptr<ResilienceManager> resil_;
  std::unique_ptr<HierarchyBase> hier_;
  SyncController sync_;
  Engine engine_;
  int sync_homes_issued_ = 0;
  std::function<void()> pre_reconcile_;
  /// Blocks whose L2 was already discarded by a cluster-fail kill. The
  /// discard is deferred to the block's LAST armed victim: the engine kills
  /// victims in wall order, so an eager discard at the first kill would drop
  /// state that cores still executing at sim cycles BEFORE the fail cycle
  /// write back afterwards — a logically-pre-failure put would then land in
  /// a post-failure L2 and read back as a state that never existed.
  std::vector<bool> l2_discarded_;
  std::vector<bool> l2_cluster_armed_;  ///< block has a cluster-fail rule
  std::vector<int> l2_pending_;  ///< armed victims of the block not yet killed
};

/// Reads results through the hierarchy after a run, the way a verification
/// pass on the real machine would: self-invalidate core 0's private cache
/// (and its block L2 on multi-block machines), then read — values must have
/// been written back by the application's final annotated barrier. On the
/// coherent baseline the invalidation is a no-op and reads are coherent.
class VerifyReader {
 public:
  explicit VerifyReader(Machine& m);

  template <typename T>
  [[nodiscard]] T read(Addr a) {
    T v{};
    m_->hierarchy().read(0, a, sizeof(T), &v);
    return v;
  }

 private:
  Machine* m_;
};

}  // namespace hic
