// MPI-lite: the message-passing half of programming model 1 (paper §IV).
//
// Across blocks, model 1 uses MPI; MPI_Send / MPI_Recv are implemented
// cheaply on this machine because sender and receiver share the chip's
// address space: they communicate through an on-chip *uncacheable* shared
// buffer and synchronize through the hardware sync controller. Broadcasts
// need no per-recipient copies — the root writes once and every receiver
// reads the same location.
//
// Uncacheable accesses bypass the cache hierarchy entirely (no WB/INV
// needed); they pay the mesh round trip to the home shared-cache bank plus
// the serialization of the payload over 128-bit links.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "runtime/thread.hpp"

namespace hic {

class MpiComm {
 public:
  /// Declares channels and flags for `ranks` participants. Must be created
  /// before Machine::run. Rank i must be driven by thread i.
  MpiComm(Machine& m, int ranks, std::uint32_t max_msg_bytes = 4096);

  [[nodiscard]] int ranks() const { return ranks_; }

  /// Blocking ready-send / receive (rendezvous through flags).
  void send(Thread& t, int dst, std::span<const std::byte> data);
  void recv(Thread& t, int src, std::span<std::byte> out);

  /// Nonblocking variants (paper §IV mentions MPI_Isend/MPI_Irecv). The
  /// operation starts immediately when the channel allows it and otherwise
  /// completes inside wait(); test(t) polls without blocking. One
  /// outstanding request per (peer, direction) at a time.
  struct Request {
    bool completed = false;
    bool is_send = false;
    int peer = -1;
    std::uint64_t seq = 0;
    std::span<const std::byte> send_data{};
    std::span<std::byte> recv_data{};
  };
  [[nodiscard]] Request isend(Thread& t, int dst,
                              std::span<const std::byte> data);
  [[nodiscard]] Request irecv(Thread& t, int src, std::span<std::byte> out);
  /// True if the request can complete without blocking (completes it).
  bool test(Thread& t, Request& req);
  /// Blocks until the request completes.
  void wait(Thread& t, Request& req);

  /// Broadcast: the root writes the buffer once; every other rank reads the
  /// same location. `data` is input at the root, output elsewhere.
  void bcast(Thread& t, int root, std::span<std::byte> data);

  /// Convenience for typed scalars.
  template <typename T>
  void send_value(Thread& t, int dst, const T& v) {
    send(t, dst, std::as_bytes(std::span(&v, 1)));
  }
  template <typename T>
  [[nodiscard]] T recv_value(Thread& t, int src) {
    T v{};
    recv(t, src, std::as_writable_bytes(std::span(&v, 1)));
    return v;
  }

 private:
  struct Channel {
    Addr buf = 0;
    Machine::Flag ready;  ///< sender posts sequence number
    Machine::Flag done;   ///< receiver acknowledges sequence number
  };

  [[nodiscard]] Channel& channel(int src, int dst) {
    return channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(ranks_) +
                     static_cast<std::size_t>(dst)];
  }
  /// Timed uncacheable transfer of `bytes` at address `a`.
  void uncached_xfer(Thread& t, Addr a, std::uint32_t bytes);

  Machine* m_;
  int ranks_;
  std::uint32_t max_msg_bytes_;
  std::vector<Channel> channels_;
  std::vector<std::uint64_t> send_seq_;  ///< written only by the sender rank
  std::vector<std::uint64_t> recv_seq_;  ///< written only by the receiver rank
  // Broadcast state (one slot per root).
  std::vector<Addr> bcast_buf_;
  std::vector<Machine::Flag> bcast_ready_;
  std::vector<Machine::Flag> bcast_ack_;
  std::vector<std::uint64_t> bcast_seq_;  ///< per rank, local progress
};

}  // namespace hic
