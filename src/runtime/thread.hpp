// Thread: the per-thread programming interface the workloads run against.
//
// It implements both of the paper's programming approaches on top of the
// engine's CoreServices:
//
// Programming model 1 (§IV, intra-block shared memory): synchronization
// operations carry the WB/INV annotations of Figure 4 —
//   barrier     : WB(all written) before, INV(exposed reads) after; the
//                 baseline uses WB ALL / INV ALL;
//   critical    : INV immediately before acquire (or the IEB's lazy scheme),
//                 WB immediately before release (or the MEB-directed WB);
//   flag        : WB ALL before set, INV ALL after a successful wait;
//   OCC         : WB ALL before acquire / INV ALL after release when
//                 outside-critical-section communication may exist;
//   data race   : racy_store/racy_load pair each racy access with a
//                 word-granularity WB/INV (Figure 6b).
// Under HCC all annotations disappear, so the identical workload code runs
// on the coherent baseline.
//
// Programming model 2 (§V, inter-block shared memory): epoch_produce /
// epoch_consume translate compiler-emitted directives into the configured
// instruction flavor (Table II: Base -> ALL-global, Addr -> ranges-global,
// Addr+L -> level-adaptive WB_CONS / INV_PROD).
#pragma once

#include <span>

#include "common/directives.hpp"
#include "common/rng.hpp"
#include "runtime/machine.hpp"

namespace hic {

class Thread {
 public:
  Thread(Machine& m, CoreServices& svc, int nthreads);

  [[nodiscard]] ThreadId tid() const { return svc_->core(); }
  [[nodiscard]] int nthreads() const { return nthreads_; }
  [[nodiscard]] Cycle now() const { return svc_->now(); }
  [[nodiscard]] Machine& machine() { return *m_; }
  [[nodiscard]] CoreServices& services() { return *svc_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Advances this core's clock by `cycles` of pure computation.
  void compute(Cycle cycles) { svc_->compute(cycles); }

  // --- Typed memory accesses (through the cache hierarchy) -----------------
  template <typename T>
  [[nodiscard]] T load(Addr a) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    T v{};
    svc_->load(a, sizeof(T), &v);
    return v;
  }
  template <typename T>
  void store(Addr a, const T& v) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    svc_->store(a, sizeof(T), &v);
  }

  // --- Model 1: annotated synchronization ----------------------------------
  void barrier(Machine::Barrier b);
  /// Model 1 on a multi-block machine (§IV): a barrier among the threads of
  /// ONE block. Communication stays inside the block, so the annotations
  /// are the intra-block ones — WB ALL to the block L2, INV ALL of the
  /// private L1 — regardless of the machine's block count. Inter-block
  /// communication goes through MPI-lite instead.
  void barrier_block(Machine::Barrier b);
  /// Barrier with the paper's §IV-A refinement: when a thread owns part of
  /// the shared space and reuses it across barriers "as if it was private",
  /// the annotation skips the INV ALL and self-invalidates only the ranges
  /// the next epoch actually consumes from other threads (the exposed
  /// reads). The WB side stays WB ALL — it writes back only dirty lines and
  /// leaves them valid-clean, so it never destroys reuse.
  void barrier_refined(Machine::Barrier b,
                       std::span<const AddrRange> consumed);
  /// Fully refined barrier: additionally narrows the WB side to the ranges
  /// this thread produced *for other threads* ("a WB for all the shared
  /// variables written ... that may be needed by other threads", §III-A) —
  /// data rewritten privately every epoch is not written back. The final
  /// barrier of a program must remain unrefined (or produce everything) so
  /// results are published.
  void barrier_refined(Machine::Barrier b, std::span<const AddrRange> produced,
                       std::span<const AddrRange> consumed);
  void lock(Machine::Lock l);
  void unlock(Machine::Lock l);
  void flag_set(Machine::Flag f, std::uint64_t value);
  void flag_wait(Machine::Flag f, std::uint64_t expect);
  std::uint64_t flag_add(Machine::Flag f, std::uint64_t delta);

  // --- Serving family: ownership transfer and stage handoff ----------------
  /// Lock-based ownership transfer (sharded KV store, docs/serving.md): the
  /// lock still provides mutual exclusion and the release-acquire edge, but
  /// the blanket critical-section annotations are replaced by ranged ones
  /// naming exactly the record region whose ownership moves — the paper's
  /// §IV-A refinement applied to a request-serving handoff, where per-line
  /// WB/INV at the transfer point (not bulk flushes) carries correctness.
  void acquire_owned(Machine::Lock l, AddrRange region);
  void release_owned(Machine::Lock l, AddrRange region);
  /// Non-blocking acquire_owned: true = the lock was free and ownership
  /// (with the ranged INV) transferred; false = held elsewhere, nothing
  /// queued, no annotation issued. The chaos-recovery paths use it so a
  /// survivor probing a dead peer's shard never parks on a lock whose
  /// holder will not return.
  [[nodiscard]] bool try_acquire_owned(Machine::Lock l, AddrRange region);
  /// Non-blocking flag_wait_ranged: true when `value >= expect` already
  /// holds — the consumed INVs are applied exactly as flag_wait_ranged
  /// would. False: no waiter registered, no annotation.
  [[nodiscard]] bool flag_try_wait_ranged(Machine::Flag f,
                                          std::uint64_t expect,
                                          std::span<const InvDirective> consumed);
  /// Polling read of a flag's value (no waiter, no happens-before edge).
  [[nodiscard]] std::uint64_t flag_peek(Machine::Flag f) {
    return svc_->flag_peek(f.id);
  }
  /// True once `peer` (a thread pinned to core `peer`) has reached its
  /// injected fail-stop cycle: the serving layer's failure detector (static
  /// lease expiry — deterministic, no hidden state).
  [[nodiscard]] bool peer_failed(ThreadId peer) const {
    const Cycle at = m_->fail_cycle_of(static_cast<CoreId>(peer));
    return at != 0 && svc_->now() >= at;
  }
  /// Flag handoff with compiler-substrate directives (pipeline stages): WB
  /// exactly the produced ranges before the set, INV exactly the consumed
  /// ranges after a successful wait. Empty directive lists make the op a
  /// pure control edge (no annotation, nothing to elide).
  void flag_set_ranged(Machine::Flag f, std::uint64_t value,
                       std::span<const WbDirective> produced);
  void flag_wait_ranged(Machine::Flag f, std::uint64_t expect,
                        std::span<const InvDirective> consumed);

  /// Operand-granularity WB/INV (paper §III-B: "byte, half word, word,
  /// double word, or quad word ... they take as an argument the address of
  /// the operand"). Internally line-granular, like all flavors.
  template <typename T>
  void wb_operand(Addr a) {
    static_assert(sizeof(T) <= 16);
    svc_->wb_range({a, sizeof(T)}, wb_level_);
  }
  template <typename T>
  void inv_operand(Addr a) {
    static_assert(sizeof(T) <= 16);
    svc_->inv_range({a, sizeof(T)}, inv_level_);
  }

  /// DMA transfer between block L2s (Runnemede's inter-block mechanism,
  /// paper §VIII). The producer publishes the source range to its block L2
  /// (e.g. via a block barrier) before the transfer; consumers in the
  /// destination block self-invalidate their L1 before reading, as after
  /// any handoff. Synchronous: this thread waits for completion.
  void dma_copy(BlockId src_block, Addr src, BlockId dst_block, Addr dst,
                std::uint64_t bytes) {
    svc_->dma_copy(src_block, src, dst_block, dst, bytes);
  }

  /// Data-race communication with enforced visibility (Figure 6b). The
  /// access is declared racy to the coherence oracle, which exempts it from
  /// the happens-before checks — so an elided racy WB/INV is judged by the
  /// value-based verify instead (a benign race stays benign).
  template <typename T>
  void racy_store(Addr a, const T& v) {
    svc_->oracle_mark_racy();
    store(a, v);
    ++m_->stats().ops().anno_racy;
    if (!coherent_ && !elide_wb(AnnoSite::RacyStoreWb))
      svc_->wb_range({a, sizeof(T)}, wb_level_);
  }
  template <typename T>
  [[nodiscard]] T racy_load(Addr a) {
    ++m_->stats().ops().anno_racy;
    if (!coherent_ && !elide_inv(AnnoSite::RacyLoadInv))
      svc_->inv_range({a, sizeof(T)}, inv_level_);
    svc_->oracle_mark_racy();
    return load<T>(a);
  }

  // --- Model 2: epoch boundaries with compiler directives ------------------
  /// End of a producing epoch: issues the configured WB flavor.
  void epoch_produce(std::span<const WbDirective> dirs);
  /// Start of a consuming epoch: issues the configured INV flavor.
  void epoch_consume(std::span<const InvDirective> dirs);
  /// Whole-cache epoch ops with a known peer (paper §V-B: "WB_CONS ALL
  /// (ConsID)" / "INV_PROD ALL (ProdID)") — used when an epoch is too long
  /// or irregular to enumerate addresses but the peer thread is known.
  void epoch_produce_all(ThreadId consumer);
  void epoch_consume_all(ThreadId producer);

  /// produce -> barrier -> consume, the standard loop-boundary sequence.
  void epoch_barrier(Machine::Barrier b, std::span<const WbDirective> wb,
                     std::span<const InvDirective> inv);
  /// Barrier-only epoch boundary (no analyzable communication).
  void epoch_barrier(Machine::Barrier b) {
    epoch_barrier(b, {}, {});
  }

 private:
  /// The annotation-mutation harness: true when an armed elide-wb /
  /// elide-inv fault rule suppresses this thread's annotation at `site`
  /// (fault_plan.hpp). Empty fault plans short-circuit to false, so the
  /// common un-mutated run costs one branch per annotation.
  [[nodiscard]] bool elide_wb(AnnoSite site);
  [[nodiscard]] bool elide_inv(AnnoSite site);

  Machine* m_;
  CoreServices* svc_;
  int nthreads_;
  bool coherent_;
  bool inter_;
  InterPolicy policy_;
  Level wb_level_;   ///< shared level WBs must reach (L2 intra, L3 inter)
  Level inv_level_;  ///< level INVs must clear (L1 intra, L2 inter)
  Rng rng_;
};

}  // namespace hic
