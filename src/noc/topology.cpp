#include "noc/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace hic {

namespace {
/// Width of one block's tile of cores: the largest power of two not
/// exceeding sqrt(cores_per_block). 16 cores -> 4x4; 8 cores -> 2x4.
int block_tile_cols(int cores_per_block) {
  int w = 1;
  while ((w * 2) * (w * 2) <= cores_per_block) w *= 2;
  return w;
}
}  // namespace

ChipTopology::ChipTopology(const MachineConfig& cfg)
    : cfg_(cfg),
      hop_cycles_(cfg.mesh_hop_cycles),
      link_bytes_(cfg.link_bits / 8) {
  cfg_.validate();
  const int tile_cols = block_tile_cols(cfg_.cores_per_block);
  HIC_CHECK_MSG(cfg_.cores_per_block % tile_cols == 0,
                "cores per block must tile a rectangle");
  cols_ = cfg_.blocks * tile_cols;
  rows_ = cfg_.cores_per_block / tile_cols;
}

int ChipTopology::hops(NodeId a, NodeId b) const {
  return std::abs(x_of(a) - x_of(b)) + std::abs(y_of(a) - y_of(b));
}

std::uint64_t ChipTopology::flits_for(std::uint32_t payload_bytes) const {
  const std::uint64_t data =
      (payload_bytes + link_bytes_ - 1) / link_bytes_;
  return 1 + data;  // header + payload
}

NodeId ChipTopology::core_node(CoreId c) const {
  HIC_CHECK(c >= 0 && c < cfg_.total_cores());
  const int tile_cols = cols_ / cfg_.blocks;
  const BlockId block = cfg_.block_of(c);
  const int local = c % cfg_.cores_per_block;
  const int x = block * tile_cols + local % tile_cols;
  const int y = local / tile_cols;
  return node_at(x, y);
}

int ChipTopology::l2_bank_of(Addr line_addr) const {
  return static_cast<int>((line_addr / cfg_.l1.line_bytes) %
                          static_cast<std::uint64_t>(cfg_.cores_per_block));
}

NodeId ChipTopology::l2_bank_node(BlockId block, int bank) const {
  HIC_CHECK(block >= 0 && block < cfg_.blocks);
  HIC_CHECK(bank >= 0 && bank < cfg_.cores_per_block);
  // Each L2 bank is co-located with one core of the block.
  return core_node(block * cfg_.cores_per_block + bank);
}

int ChipTopology::l3_bank_of(Addr line_addr) const {
  HIC_CHECK(cfg_.multi_block());
  return static_cast<int>((line_addr / cfg_.l1.line_bytes) %
                          static_cast<std::uint64_t>(cfg_.l3_banks));
}

NodeId ChipTopology::l3_bank_node(int bank) const {
  HIC_CHECK(cfg_.multi_block());
  HIC_CHECK(bank >= 0 && bank < cfg_.l3_banks);
  // One L3 bank sits at the center of each block's tile (banks cycle over
  // blocks if there are more banks than blocks).
  const int block = bank % cfg_.blocks;
  return core_node(block * cfg_.cores_per_block + cfg_.cores_per_block / 2);
}

Cycle ChipTopology::retry_latency(NodeId a, NodeId b, int attempts) const {
  HIC_CHECK(attempts >= 0);
  Cycle lost = 0;
  for (int k = 1; k <= attempts; ++k) {
    const int backoff_hops =
        k < 6 ? std::min(1 << k, kMaxBackoffHops) : kMaxBackoffHops;
    lost += latency(a, b) + static_cast<Cycle>(backoff_hops) * hop_cycles_;
  }
  return lost;
}

Cycle ChipTopology::retransmit_latency(NodeId a, NodeId b, int attempt,
                                       Cycle timeout, Cycle base, Cycle cap,
                                       Cycle jitter) const {
  HIC_CHECK(attempt >= 1);
  Cycle backoff = base;
  for (int k = 1; k < attempt && backoff < cap; ++k) backoff *= 2;
  backoff = std::min(backoff, cap);
  return timeout + backoff + jitter + latency(a, b);
}

NodeId ChipTopology::memory_node_near(NodeId n) const {
  const NodeId corners[4] = {node_at(0, 0), node_at(cols_ - 1, 0),
                             node_at(0, rows_ - 1),
                             node_at(cols_ - 1, rows_ - 1)};
  NodeId best = corners[0];
  for (NodeId c : corners)
    if (hops(n, c) < hops(n, best)) best = c;
  return best;
}

}  // namespace hic
