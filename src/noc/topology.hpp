// On-chip network model: a 2D mesh with dimension-order routing,
// 4 cycles/hop and 128-bit links (paper Table III), plus the placement of
// cores, L2/L3 banks, and the corner memory controllers.
//
// The model is latency+traffic oriented: messages pay Manhattan-distance hop
// latency and are accounted in flits; link contention is approximated by the
// per-line injection occupancy charged by the cache-op cost model.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/machine_config.hpp"
#include "common/types.hpp"

namespace hic {

/// A node index on the mesh (row-major).
using NodeId = int;

class ChipTopology {
 public:
  explicit ChipTopology(const MachineConfig& cfg);

  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int num_nodes() const { return cols_ * rows_; }

  [[nodiscard]] NodeId node_at(int x, int y) const {
    HIC_DCHECK(x >= 0 && x < cols_ && y >= 0 && y < rows_);
    return y * cols_ + x;
  }
  [[nodiscard]] int x_of(NodeId n) const { return n % cols_; }
  [[nodiscard]] int y_of(NodeId n) const { return n / cols_; }

  /// Manhattan hop count between two nodes.
  [[nodiscard]] int hops(NodeId a, NodeId b) const;

  /// One-way latency in cycles between two nodes.
  [[nodiscard]] Cycle latency(NodeId a, NodeId b) const {
    return static_cast<Cycle>(hops(a, b)) * hop_cycles_;
  }
  [[nodiscard]] Cycle round_trip(NodeId a, NodeId b) const {
    return 2 * latency(a, b);
  }

  /// Cycles a message between `a` and `b` loses to `attempts` failed
  /// deliveries: each retry repays the one-way path latency plus an
  /// exponential backoff in hop-cycle units, capped at kMaxBackoffHops so a
  /// burst of retries stays bounded (used by fault injection's delay-noc).
  static constexpr int kMaxBackoffHops = 32;
  [[nodiscard]] Cycle retry_latency(NodeId a, NodeId b, int attempts) const;

  /// Cycles one reliable-delivery retransmission costs: the timeout waited
  /// before giving up on the ACK, the exponential backoff for attempt number
  /// `attempt` (1-based, `base` cycles doubling up to `cap`), a caller-
  /// supplied `jitter` (drawn from the deterministic recovery RNG), and the
  /// repaid one-way path latency (used by src/resil's WB/INV retry loop).
  [[nodiscard]] Cycle retransmit_latency(NodeId a, NodeId b, int attempt,
                                         Cycle timeout, Cycle base, Cycle cap,
                                         Cycle jitter) const;

  /// Flits needed for a payload of `bytes` (one header flit + data flits).
  [[nodiscard]] std::uint64_t flits_for(std::uint32_t payload_bytes) const;
  /// Flits of a control message (header only).
  [[nodiscard]] std::uint64_t control_flits() const { return 1; }

  // --- Placement -----------------------------------------------------------
  /// The mesh node hosting a core (its L1 and its local L2 bank).
  [[nodiscard]] NodeId core_node(CoreId c) const;

  /// The L2 bank index serving a line address within a block, and its node.
  /// Intra-block: 16 banks (one per core); inter-block: 8 banks per block.
  [[nodiscard]] int l2_bank_of(Addr line_addr) const;
  [[nodiscard]] NodeId l2_bank_node(BlockId block, int bank) const;

  /// The L3 bank serving a line address (multi-block configs only).
  [[nodiscard]] int l3_bank_of(Addr line_addr) const;
  [[nodiscard]] NodeId l3_bank_node(int bank) const;

  /// Nearest corner memory controller to a node.
  [[nodiscard]] NodeId memory_node_near(NodeId n) const;

  [[nodiscard]] const MachineConfig& config() const { return cfg_; }

 private:
  MachineConfig cfg_;
  int cols_;
  int rows_;
  Cycle hop_cycles_;
  std::uint32_t link_bytes_;
};

}  // namespace hic
