#include "compiler/analysis.hpp"

#include <algorithm>

namespace hic {

EpochPlan::EpochPlan(int num_loops, int nthreads)
    : num_loops_(num_loops), nthreads_(nthreads) {
  HIC_CHECK(num_loops_ >= 0 && nthreads_ > 0);
  wb_.resize(static_cast<std::size_t>(num_loops_) *
             static_cast<std::size_t>(nthreads_));
  inv_.resize(wb_.size());
  inspector_.assign(static_cast<std::size_t>(num_loops_), false);
}

std::span<const WbDirective> EpochPlan::wb_for(int loop, ThreadId t) const {
  HIC_CHECK(loop >= 0 && loop < num_loops_ && t >= 0 && t < nthreads_);
  const auto& v = wb_[static_cast<std::size_t>(loop) *
                          static_cast<std::size_t>(nthreads_) +
                      static_cast<std::size_t>(t)];
  return {v.data(), v.size()};
}

std::span<const InvDirective> EpochPlan::inv_for(int loop, ThreadId t) const {
  HIC_CHECK(loop >= 0 && loop < num_loops_ && t >= 0 && t < nthreads_);
  const auto& v = inv_[static_cast<std::size_t>(loop) *
                           static_cast<std::size_t>(nthreads_) +
                       static_cast<std::size_t>(t)];
  return {v.data(), v.size()};
}

bool EpochPlan::needs_inspector(int loop) const {
  HIC_CHECK(loop >= 0 && loop < num_loops_);
  return inspector_[static_cast<std::size_t>(loop)];
}

void EpochPlan::add_wb(int loop, ThreadId t, WbDirective d) {
  if (d.range.empty()) return;
  auto& v = wb_[static_cast<std::size_t>(loop) *
                    static_cast<std::size_t>(nthreads_) +
                static_cast<std::size_t>(t)];
  if (std::find(v.begin(), v.end(), d) == v.end()) v.push_back(d);
}

void EpochPlan::add_inv(int loop, ThreadId t, InvDirective d) {
  if (d.range.empty()) return;
  auto& v = inv_[static_cast<std::size_t>(loop) *
                     static_cast<std::size_t>(nthreads_) +
                 static_cast<std::size_t>(t)];
  if (std::find(v.begin(), v.end(), d) == v.end()) v.push_back(d);
}

void EpochPlan::set_wb(int loop, ThreadId t, std::vector<WbDirective> v) {
  HIC_CHECK(loop >= 0 && loop < num_loops_ && t >= 0 && t < nthreads_);
  wb_[static_cast<std::size_t>(loop) * static_cast<std::size_t>(nthreads_) +
      static_cast<std::size_t>(t)] = std::move(v);
}

void EpochPlan::mark_inspector(int loop) {
  inspector_[static_cast<std::size_t>(loop)] = true;
}

std::size_t EpochPlan::total_wb_directives() const {
  std::size_t n = 0;
  for (const auto& v : wb_) n += v.size();
  return n;
}

std::size_t EpochPlan::total_inv_directives() const {
  std::size_t n = 0;
  for (const auto& v : inv_) n += v.size();
  return n;
}

namespace {

/// Clamp an element interval to the array's bounds.
ElemInterval clamp_to(const ArrayInfo& a, ElemInterval iv) {
  return iv.intersect({0, a.length - 1});
}

/// After emitting per-(producer, consumer) directives, a producer range
/// consumed by several threads cannot be expressed by one WB_CONS(addr, id):
/// the paper's compiler publishes such data globally. Demote to unknown any
/// WB directive overlapping another with a different consumer.
void demote_multi_consumer(std::vector<WbDirective>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      if (v[i].consumer != v[j].consumer &&
          v[i].range.overlaps(v[j].range)) {
        v[i].consumer = kUnknownThread;
        v[j].consumer = kUnknownThread;
      }
    }
  }
  std::sort(v.begin(), v.end(), [](const WbDirective& a, const WbDirective& b) {
    if (a.range.base != b.range.base) return a.range.base < b.range.base;
    if (a.range.bytes != b.range.bytes) return a.range.bytes < b.range.bytes;
    return a.consumer < b.consumer;
  });
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

EpochPlan analyze_producer_consumer(const ProgramGraph& prog, int nthreads) {
  EpochPlan plan(prog.num_loops(), nthreads);

  for (int p = 0; p < prog.num_loops(); ++p) {
    const LoopNode& prod = prog.loop(p);
    const std::vector<int> reach = prog.reachable_from(p);

    for (const ArrayRef& def : prod.refs) {
      if (def.kind == RefKind::Use) continue;
      const ArrayInfo& arr = prog.array(def.array);

      for (int c : reach) {
        const LoopNode& cons = prog.loop(c);
        for (const ArrayRef& use : cons.refs) {
          if (use.array != def.array || use.kind != RefKind::Use) continue;

          if (def.kind == RefKind::ReductionDef) {
            // A reduction has no ordering: producer-consumer pairs cannot
            // be determined (paper: EP/IS). Every participating thread may
            // have touched any element of the target, so each publishes the
            // whole array globally; consumers refresh globally.
            const ElemInterval whole{0, arr.length - 1};
            for (ThreadId t = 0; t < nthreads; ++t) {
              const ElemInterval ch = chunk_of(prod, nthreads, t);
              if (ch.empty()) continue;
              plan.add_wb(p, t, {arr.byte_range(whole), kUnknownThread});
            }
            for (ThreadId u = 0; u < nthreads; ++u) {
              const ElemInterval ch = chunk_of(cons, nthreads, u);
              if (ch.empty()) continue;
              ElemInterval img =
                  use.indirect
                      ? ElemInterval{0, arr.length - 1}
                      : clamp_to(arr, affine_image(use.index, ch.lo, ch.hi));
              plan.add_inv(c, u, {arr.byte_range(img), kUnknownThread});
            }
            continue;
          }

          if (use.indirect) {
            // The read pattern is runtime data: the consumer loop needs an
            // inspector; the producer writes its whole section back to the
            // last-level cache (paper: "we write everything to L3").
            plan.mark_inspector(c);
            for (ThreadId t = 0; t < nthreads; ++t) {
              const ElemInterval ch = chunk_of(prod, nthreads, t);
              if (ch.empty()) continue;
              const ElemInterval img =
                  clamp_to(arr, affine_image(def.index, ch.lo, ch.hi));
              plan.add_wb(p, t, {arr.byte_range(img), kUnknownThread});
            }
            continue;
          }

          // Affine def, affine use: intersect per-thread sections.
          for (ThreadId t = 0; t < nthreads; ++t) {
            const ElemInterval pch = chunk_of(prod, nthreads, t);
            if (pch.empty()) continue;
            const ElemInterval dimg =
                clamp_to(arr, affine_image(def.index, pch.lo, pch.hi));
            if (dimg.empty()) continue;
            for (ThreadId u = 0; u < nthreads; ++u) {
              if (u == t) continue;  // same core keeps its own data
              const ElemInterval cch = chunk_of(cons, nthreads, u);
              if (cch.empty()) continue;
              const ElemInterval uimg =
                  clamp_to(arr, affine_image(use.index, cch.lo, cch.hi));
              const ElemInterval shared = dimg.intersect(uimg);
              if (shared.empty()) continue;
              plan.add_wb(p, t, {arr.byte_range(shared), u});
              plan.add_inv(c, u, {arr.byte_range(shared), t});
            }
          }
        }
      }
    }
  }

  // Resolve single-WB / multi-consumer conflicts per (loop, thread).
  for (int p = 0; p < prog.num_loops(); ++p) {
    for (ThreadId t = 0; t < nthreads; ++t) {
      auto span = plan.wb_for(p, t);
      std::vector<WbDirective> v(span.begin(), span.end());
      demote_multi_consumer(v);
      plan.set_wb(p, t, std::move(v));
    }
  }
  return plan;
}

StageHandoff analyze_stage_handoff(const ArrayInfo& ring, std::int64_t slots,
                                   std::int64_t slot_elems, ThreadId producer,
                                   ThreadId consumer) {
  HIC_CHECK(slots > 0 && slot_elems > 0);
  HIC_CHECK(slots * slot_elems <= ring.length);
  StageHandoff h;
  h.produce.reserve(static_cast<std::size_t>(slots));
  h.consume.reserve(static_cast<std::size_t>(slots));
  for (std::int64_t s = 0; s < slots; ++s) {
    const ElemInterval slot{s * slot_elems, (s + 1) * slot_elems - 1};
    const AddrRange r = ring.byte_range(slot);
    h.produce.push_back({r, consumer});
    h.consume.push_back({r, producer});
  }
  return h;
}

}  // namespace hic
