#include "compiler/loop_ir.hpp"

#include <algorithm>

namespace hic {

ElemInterval affine_image(const AffineExpr& e, std::int64_t first,
                          std::int64_t last) {
  if (first > last) return {};
  const std::int64_t a = e.eval(first);
  const std::int64_t b = e.eval(last);
  return {std::min(a, b), std::max(a, b)};
}

ElemInterval chunk_of(const LoopNode& loop, int nthreads, ThreadId t) {
  HIC_CHECK(nthreads > 0 && t >= 0 && t < nthreads);
  const std::int64_t n = loop.ub - loop.lb;
  if (n <= 0) return {};
  if (loop.serial) {
    if (t != 0) return {};
    return {loop.lb, loop.ub - 1};
  }
  const std::int64_t chunk = (n + nthreads - 1) / nthreads;
  const std::int64_t first = loop.lb + static_cast<std::int64_t>(t) * chunk;
  const std::int64_t last = std::min(first + chunk, loop.ub) - 1;
  if (first > last) return {};
  return {first, last};
}

ThreadId owner_of_iteration(const LoopNode& loop, int nthreads,
                            std::int64_t i) {
  if (i < loop.lb || i >= loop.ub) return kInvalidThread;
  if (loop.serial) return 0;
  const std::int64_t n = loop.ub - loop.lb;
  const std::int64_t chunk = (n + nthreads - 1) / nthreads;
  return static_cast<ThreadId>((i - loop.lb) / chunk);
}

int ProgramGraph::add_array(std::string name, Addr base,
                            std::uint32_t elem_bytes, std::int64_t length) {
  HIC_CHECK(elem_bytes > 0 && length > 0);
  arrays_.push_back({std::move(name), base, elem_bytes, length});
  return static_cast<int>(arrays_.size() - 1);
}

int ProgramGraph::add_loop(LoopNode node) {
  node.id = static_cast<int>(loops_.size());
  for (const auto& r : node.refs)
    HIC_CHECK_MSG(r.array >= 0 && r.array < num_arrays(),
                  "loop references unknown array");
  loops_.push_back(std::move(node));
  edges_.emplace_back();
  return static_cast<int>(loops_.size() - 1);
}

void ProgramGraph::add_edge(int from, int to) {
  HIC_CHECK(from >= 0 && from < num_loops());
  HIC_CHECK(to >= 0 && to < num_loops());
  edges_[static_cast<std::size_t>(from)].push_back(to);
}

const ArrayInfo& ProgramGraph::array(int id) const {
  HIC_CHECK(id >= 0 && id < num_arrays());
  return arrays_[static_cast<std::size_t>(id)];
}

const LoopNode& ProgramGraph::loop(int id) const {
  HIC_CHECK(id >= 0 && id < num_loops());
  return loops_[static_cast<std::size_t>(id)];
}

const std::vector<int>& ProgramGraph::successors(int loop_id) const {
  HIC_CHECK(loop_id >= 0 && loop_id < num_loops());
  return edges_[static_cast<std::size_t>(loop_id)];
}

std::vector<int> ProgramGraph::reachable_from(int from) const {
  std::vector<bool> seen(static_cast<std::size_t>(num_loops()), false);
  std::vector<int> stack;
  // Seed with successors (>= 1 edge required, so a loop is reachable from
  // itself only through a cycle).
  for (int s : successors(from)) {
    if (!seen[static_cast<std::size_t>(s)]) {
      seen[static_cast<std::size_t>(s)] = true;
      stack.push_back(s);
    }
  }
  std::vector<int> out;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    out.push_back(v);
    for (int s : successors(v)) {
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hic
