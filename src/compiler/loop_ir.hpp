// Loop-nest IR for the compiler analysis of programming model 2 (paper §V-A).
//
// The paper instruments OpenMP programs with ROSE; this substrate captures
// exactly the program class that analysis handles — statically-scheduled
// parallel `for` loops over affine array subscripts, serial sections,
// reductions, and subscripts through runtime index arrays (irregular) —
// and runs the same algorithm: interprocedural CFG reachability, then
// DEF-USE dataflow between loop pairs, intersecting per-thread index ranges
// under static chunk scheduling to name producer and consumer thread IDs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace hic {

/// index = scale * i + offset, in array elements.
struct AffineExpr {
  std::int64_t scale = 1;
  std::int64_t offset = 0;

  [[nodiscard]] std::int64_t eval(std::int64_t i) const {
    return scale * i + offset;
  }
  constexpr bool operator==(const AffineExpr&) const = default;
};

/// A closed integer interval [lo, hi]; empty when lo > hi.
struct ElemInterval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;

  [[nodiscard]] bool empty() const { return lo > hi; }
  [[nodiscard]] ElemInterval intersect(const ElemInterval& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }
  constexpr bool operator==(const ElemInterval&) const = default;
};

/// Image of [first, last] under an affine map.
ElemInterval affine_image(const AffineExpr& e, std::int64_t first,
                          std::int64_t last);

enum class RefKind : std::uint8_t {
  Use,           ///< read
  Def,           ///< write, one writer per element under the schedule
  ReductionDef,  ///< commutative accumulation: no producer-consumer order
};

struct ArrayRef {
  int array = -1;
  AffineExpr index;
  RefKind kind = RefKind::Use;
  /// Subscript goes through a runtime index array (A[idx[j]]): the static
  /// analysis cannot resolve it; an inspector must run (paper Fig. 8).
  bool indirect = false;
};

struct ArrayInfo {
  std::string name;
  Addr base = 0;
  std::uint32_t elem_bytes = 0;
  std::int64_t length = 0;

  [[nodiscard]] AddrRange byte_range(const ElemInterval& iv) const {
    if (iv.empty()) return {};
    return {base + static_cast<Addr>(iv.lo) * elem_bytes,
            static_cast<std::uint64_t>(iv.hi - iv.lo + 1) * elem_bytes};
  }
};

struct LoopNode {
  int id = -1;
  std::int64_t lb = 0;  ///< iterates [lb, ub)
  std::int64_t ub = 0;
  /// Serial section: every iteration executes on thread 0 (paper: "our
  /// approach executes the serial section in only one thread").
  bool serial = false;
  std::vector<ArrayRef> refs;
};

/// Static chunk scheduling: iterations split into nthreads contiguous
/// chunks; returns thread t's iteration range [first, last] (empty if none).
ElemInterval chunk_of(const LoopNode& loop, int nthreads, ThreadId t);
/// The thread executing iteration `i` of the loop.
ThreadId owner_of_iteration(const LoopNode& loop, int nthreads,
                            std::int64_t i);

class ProgramGraph {
 public:
  int add_array(std::string name, Addr base, std::uint32_t elem_bytes,
                std::int64_t length);
  int add_loop(LoopNode node);
  /// Control-flow successor edge (may form cycles for iterative programs).
  void add_edge(int from, int to);

  [[nodiscard]] const ArrayInfo& array(int id) const;
  [[nodiscard]] const LoopNode& loop(int id) const;
  [[nodiscard]] int num_arrays() const {
    return static_cast<int>(arrays_.size());
  }
  [[nodiscard]] int num_loops() const {
    return static_cast<int>(loops_.size());
  }
  [[nodiscard]] const std::vector<int>& successors(int loop_id) const;

  /// All loops reachable from `from` by following >= 1 CFG edges.
  [[nodiscard]] std::vector<int> reachable_from(int from) const;

 private:
  std::vector<ArrayInfo> arrays_;
  std::vector<LoopNode> loops_;
  std::vector<std::vector<int>> edges_;
};

}  // namespace hic
