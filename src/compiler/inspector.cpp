#include "compiler/inspector.hpp"

#include <algorithm>

namespace hic {

std::vector<ThreadId> build_conflict_array(const LoopNode& producer,
                                           const ArrayRef& def,
                                           std::span<const std::int64_t> idx,
                                           int nthreads) {
  HIC_CHECK(def.kind == RefKind::Def);
  HIC_CHECK(def.index.scale != 0);
  std::vector<ThreadId> conflict(idx.size(), kUnknownThread);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::int64_t elem = idx[k];
    const std::int64_t num = elem - def.index.offset;
    if (num % def.index.scale != 0) continue;  // element never written
    const std::int64_t iter = num / def.index.scale;
    conflict[k] = owner_of_iteration(producer, nthreads, iter);
    if (conflict[k] == kInvalidThread) conflict[k] = kUnknownThread;
  }
  return conflict;
}

std::vector<InvDirective> inspector_inv_directives(
    const ArrayInfo& array, std::span<const std::int64_t> idx,
    std::span<const ThreadId> conflict, ThreadId self) {
  HIC_CHECK(idx.size() == conflict.size());
  std::vector<InvDirective> dirs;
  std::size_t k = 0;
  while (k < idx.size()) {
    if (conflict[k] == self) {
      ++k;
      continue;
    }
    // Coalesce a run of consecutive elements with the same producer.
    const ThreadId prod = conflict[k];
    std::int64_t lo = idx[k];
    std::int64_t hi = idx[k];
    std::size_t j = k + 1;
    while (j < idx.size() && conflict[j] == prod && idx[j] == hi + 1) {
      hi = idx[j];
      ++j;
    }
    dirs.push_back({array.byte_range({lo, hi}), prod});
    k = j;
  }
  return dirs;
}

}  // namespace hic
