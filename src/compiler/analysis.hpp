// Producer-consumer extraction (paper §V-A1): emits WB_CONS / INV_PROD
// directives for each (loop, thread) from DEF-USE dataflow over the program
// graph under static chunk scheduling.
#pragma once

#include <span>
#include <vector>

#include "common/directives.hpp"
#include "compiler/loop_ir.hpp"

namespace hic {

/// The instrumentation the analysis produces: per loop, per thread, the WB
/// directives placed at the loop's end (producer epoch) and the INV
/// directives placed at the loop's start (consumer epoch).
class EpochPlan {
 public:
  EpochPlan(int num_loops, int nthreads);

  [[nodiscard]] std::span<const WbDirective> wb_for(int loop,
                                                    ThreadId t) const;
  [[nodiscard]] std::span<const InvDirective> inv_for(int loop,
                                                      ThreadId t) const;
  /// True if the loop has indirect uses that static analysis could not
  /// resolve: the application must run an inspector (paper Fig. 8).
  [[nodiscard]] bool needs_inspector(int loop) const;

  void add_wb(int loop, ThreadId t, WbDirective d);
  void add_inv(int loop, ThreadId t, InvDirective d);
  void set_wb(int loop, ThreadId t, std::vector<WbDirective> v);
  void mark_inspector(int loop);

  [[nodiscard]] int nthreads() const { return nthreads_; }
  [[nodiscard]] std::size_t total_wb_directives() const;
  [[nodiscard]] std::size_t total_inv_directives() const;

 private:
  int num_loops_;
  int nthreads_;
  std::vector<std::vector<WbDirective>> wb_;    ///< [loop*T + t]
  std::vector<std::vector<InvDirective>> inv_;  ///< [loop*T + t]
  std::vector<bool> inspector_;
};

/// Runs the paper's algorithm:
///   1. interprocedural CFG reachability finds loop pairs (P, C) where C is
///      reachable from P;
///   2. DEF-USE: arrays defined in P and used in C;
///   3. under static chunk scheduling, intersect producer-thread def ranges
///      with consumer-thread use ranges; each non-empty cross-thread
///      intersection yields WB_CONS in P (end) and INV_PROD in C (start);
///   4. reductions and multi-consumer defs publish with an unknown consumer
///      (WB to the last-level cache); indirect uses mark the consumer loop
///      as inspector-driven and publish defs globally.
EpochPlan analyze_producer_consumer(const ProgramGraph& prog, int nthreads);

/// Stage-handoff extraction for streaming pipelines (src/apps/serve): the
/// SPSC specialization of the loop-pair analysis above. The producing stage
/// defs every slot of a ring array that the consuming stage uses, and both
/// peer threads are statically known, so DEF-USE intersection degenerates to
/// one WB_CONS / INV_PROD directive pair per ring slot — placed on the
/// producer's flag set and the consumer's flag wait instead of a loop
/// boundary.
struct StageHandoff {
  std::vector<WbDirective> produce;   ///< [slot], for the producing stage
  std::vector<InvDirective> consume;  ///< [slot], for the consuming stage
};
[[nodiscard]] StageHandoff analyze_stage_handoff(const ArrayInfo& ring,
                                                 std::int64_t slots,
                                                 std::int64_t slot_elems,
                                                 ThreadId producer,
                                                 ThreadId consumer);

}  // namespace hic
