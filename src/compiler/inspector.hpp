// Inspector-executor support for irregular accesses (paper §V-A2, Fig. 8).
//
// Iterative sparse codes (e.g. conjugate gradient) read arrays through
// runtime index arrays (p[col[j]]). The static analysis cannot name the
// producer, so an inspector loop runs once, before the iterations, and
// computes for every read the ID of the thread that produces the value —
// the `conflict` array of Figure 8. Reads whose producer is the reader
// itself need no INV; the rest become INV_PROD(addr, conflict[j]).
#pragma once

#include <span>
#include <vector>

#include "common/directives.hpp"
#include "compiler/loop_ir.hpp"

namespace hic {

/// Builds the conflict array: conflict[k] is the thread that produces
/// element idx[k] of the array written by `producer`'s def `def` (static
/// chunk scheduling over nthreads). Elements nobody writes get
/// kUnknownThread.
std::vector<ThreadId> build_conflict_array(const LoopNode& producer,
                                           const ArrayRef& def,
                                           std::span<const std::int64_t> idx,
                                           int nthreads);

/// Turns the inspector's result into INV_PROD directives for reader `self`:
/// one directive per read element whose producer differs from the reader,
/// with runs of consecutive elements from the same producer coalesced.
std::vector<InvDirective> inspector_inv_directives(
    const ArrayInfo& array, std::span<const std::int64_t> idx,
    std::span<const ThreadId> conflict, ThreadId self);

}  // namespace hic
