// CoherenceOracle: a value-independent race/staleness detector for the
// hardware-incoherent hierarchy (vector-clock detection in the FastTrack
// lineage, adapted to explicit software coherence management).
//
// The paper's correctness argument is entirely conventional: if every
// producer issues a WB before its release edge and every consumer issues an
// INV after its acquire edge, reads observe the latest happens-before-ordered
// write. The existing staleness monitor can only test that claim by VALUE
// (compare a read against the coherent shadow), which misses three failure
// classes: a stale read of a word whose value happens to be unchanged, a
// lost update (an older dirty copy overwriting a newer one on
// writeback/eviction), and a write-write race. The oracle closes all three:
//
//  - Per-core vector clocks, advanced by SyncController events. Lock
//    release/acquire, barrier arrive/leave, and flag set/wait/add establish
//    the happens-before order (release: L |= C_c, C_c[c]++; acquire:
//    C_c |= L; a barrier releases every arriver into the barrier clock and
//    every leaver acquires the join).
//  - Per-word write stamps (core, epoch, op-index, sync edge) kept in shadow
//    structures parallel to every data location: the global truth, each L1,
//    each block L2, the L3 and DRAM. Stamps move exactly when data moves:
//    fills copy a line's stamps down, writebacks/evictions merge dirty-word
//    stamps up, stores stamp the written words in the writer's L1 and the
//    global truth.
//  - Checks: a load whose HB-latest ordered write stamp differs from the
//    stamp of the cached copy is a STALE READ (no value comparison
//    involved); a store over a concurrent-epoch foreign stamp is a WRITE
//    RACE; a writeback/eviction pushing an older stamp over a newer one is a
//    LOST UPDATE.
//
// Violations are deduplicated, deterministic (the engine serializes cores),
// counted into SimStats (oracle_stale_reads / oracle_write_races /
// oracle_lost_updates), reconciled with FaultPlan accounting, and renderable
// as a human report or a byte-stable JSON log. Off (the default — a null
// pointer in the hierarchy and engine), the oracle costs one pointer test
// per hook, so golden stats and host perf are unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/machine_config.hpp"
#include "common/types.hpp"

namespace hic {

class FaultPlan;
class SimStats;

/// Identity of one write, attached to every word copy it reaches.
struct WriteStamp {
  CoreId core = kInvalidCore;  ///< writing core; -1 = pre-run initial value
  std::uint64_t epoch = 0;     ///< writer's own vector-clock entry at write
  std::uint64_t seq = 0;       ///< global monotone write index; 0 = initial
  std::uint32_t edge = kNoEdge;  ///< writer's last release edge (label index)
  bool racy = false;  ///< writer declared the access racy (Figure 6b)
  static constexpr std::uint32_t kNoEdge = ~std::uint32_t{0};
};

struct OracleViolation {
  enum class Kind : std::uint8_t { StaleRead, WriteRace, LostUpdate };
  Kind kind = Kind::StaleRead;
  Addr addr = 0;       ///< word-aligned address of the affected word
  Addr line = 0;       ///< containing line address
  int word = 0;        ///< word index within the line
  CoreId observer = kInvalidCore;  ///< reader / racing writer / pushing side
  WriteStamp seen;     ///< the stale / overwriting / racing-prior stamp
  WriteStamp truth;    ///< the HB-latest / overwritten / racing-new stamp
  std::string edge;    ///< sync edge that should have carried the fix
  std::string suggest; ///< suggested annotation
  std::uint64_t count = 1;  ///< occurrences of this exact (deduped) key
};
[[nodiscard]] const char* to_string(OracleViolation::Kind k);

class CoherenceOracle {
 public:
  CoherenceOracle() = default;

  /// Attaches the oracle to a machine (stats and fault plan may be null;
  /// `coherent` marks the HCC baseline, whose hierarchy never calls the
  /// memory hooks — sync hooks then merely maintain clocks).
  void bind(const MachineConfig& mc, SimStats* stats, FaultPlan* plan,
            bool coherent);

  /// Aborts with CheckFailure when any core's epoch reaches `limit`
  /// (wrap/overflow guard; default 2^62 — unreachable in practice, the
  /// guard exists so the failure mode is loud, not silent).
  void set_epoch_limit(std::uint64_t limit) { epoch_limit_ = limit; }

  // --- Happens-before edges (called by the engine's CoreServices) ----------
  void on_lock_acquire(CoreId c, SyncId id);
  void on_lock_release(CoreId c, SyncId id);
  void on_barrier_arrive(CoreId c, SyncId id);
  void on_barrier_complete(SyncId id, std::span<const CoreId> released);
  void on_flag_set(CoreId c, SyncId id);
  void on_flag_wait(CoreId c, SyncId id);
  void on_flag_add(CoreId c, SyncId id);

  /// The next load/store by `c` is a declared racy access (Thread::racy_*):
  /// exempt its stamp from write-race and lost-update checks.
  void mark_racy_next(CoreId c) { racy_next_[idx(c)] = true; }

  // --- Data movement (called by the incoherent hierarchy) ------------------
  void on_store(CoreId c, Addr a, std::uint32_t bytes);
  void on_load(CoreId c, Addr a, std::uint32_t bytes);
  void on_fill_l1(CoreId c, Addr line);
  void on_fill_l2(BlockId b, Addr line);
  void on_fill_l3(Addr line);
  /// Writeback/eviction merges (mask = dirty words moved).
  void on_wb_l1_to_l2(CoreId c, Addr line, std::uint64_t mask);
  void on_wb_l2_to_l3(BlockId b, Addr line, std::uint64_t mask);
  void on_wb_l3_to_mem(Addr line, std::uint64_t mask);
  void on_inv_l1(CoreId c, Addr line);
  void on_inv_l2(BlockId b, Addr line);
  void on_dma(CoreId initiator, BlockId src_block, Addr src,
              BlockId dst_block, Addr dst, std::uint64_t bytes);

  // --- Overlapped verification (sharded engine) ----------------------------
  // Deferred-apply protocol: under the sharded engine, memory hooks from a
  // quantum armed with sequence number s are BUFFERED into a per-quantum
  // event list instead of mutating the shadow state; the authoritative state
  // advances by applying complete buffers strictly in s order. Because the
  // single-thread scheduler invokes the same hooks in exactly that order,
  // the applied event stream — and therefore every verdict, seq stamp,
  // violation, and the JSON log — is bit-identical to a serialized run.
  // Sync-edge hooks (on_lock_* / on_barrier_* / on_flag_* / on_dma) stay
  // inline: the engine only invokes them from the oldest active quantum,
  // after sync_flush() has applied every earlier buffer plus the caller's
  // own partial one, so they always observe up-to-date shadow state.
  //
  // Thread-safety contract: quantum_begin/quantum_end run on the worker
  // executing the quantum; buffers are thread-local while open; pending and
  // apply state are guarded by overlap_mu_. The oracle never takes engine
  // locks (lock order: engine shard lock -> overlap_mu_, never reversed).

  /// Enters overlapped mode. `first_seq` is the seq of the first quantum the
  /// engine will arm (the apply cursor starts there).
  void begin_overlap(std::uint64_t first_seq);
  /// Opens the calling worker's buffer for the quantum armed with `seq`.
  void quantum_begin(std::uint64_t seq);
  /// Closes the calling worker's buffer, enqueues it (possibly empty —
  /// contiguity is what lets the apply cursor advance), and applies any
  /// ready prefix of pending buffers.
  void quantum_end();
  /// Called by the oldest active quantum (holding the engine's strict order
  /// gate) before an inline sync hook: applies every pending buffer with
  /// seq < `seq`, then the caller's own partial buffer, leaving the shadow
  /// state exactly as a serialized run would have it at this point.
  void sync_flush(std::uint64_t seq);
  /// Leaves overlapped mode. On a clean run every buffer has been applied;
  /// `aborted` (watchdog/exception unwind) skips the completeness check and
  /// reclaims buffers that were still open on other workers.
  void end_overlap(bool aborted);

  // --- Results -------------------------------------------------------------
  [[nodiscard]] const std::vector<OracleViolation>& violations() const {
    return violations_;
  }
  /// Total occurrences (deduped entries weighted by their repeat counts).
  [[nodiscard]] std::uint64_t total_violations() const { return total_; }
  /// Human-readable report: every deduped violation with both stamps, the
  /// sync edge, and the suggested annotation.
  [[nodiscard]] std::string report() const;
  /// Byte-stable JSON violation log (deterministic across identical runs).
  [[nodiscard]] std::string to_json() const;

 private:
  using StampLine = std::vector<WriteStamp>;
  using StampMap = std::unordered_map<Addr, StampLine>;

  [[nodiscard]] static std::size_t idx(int v) {
    return static_cast<std::size_t>(v);
  }
  [[nodiscard]] std::uint32_t words_per_line() const {
    return line_bytes_ / kWordBytes;
  }
  [[nodiscard]] Addr line_of(Addr a) const {
    return a & ~static_cast<Addr>(line_bytes_ - 1);
  }
  /// The line's stamps in `m`, default-initialized (initial stamps) if new.
  StampLine& stamps(StampMap& m, Addr line);
  /// Read-only: the line's stamp for word `w`, or the initial stamp.
  [[nodiscard]] WriteStamp peek(const StampMap& m, Addr line, int w) const;
  /// Copies the whole line's stamps from `src` into `dst`.
  void copy_line(StampMap& dst, const StampMap& src, Addr line);
  /// Merges masked words src -> dst with the lost-update check.
  void merge_up(StampMap& dst, const StampMap& src, Addr line,
                std::uint64_t mask, const char* level);
  /// L2's fill source / WB sink: the L3 on multi-block machines, DRAM else.
  StampMap& below_l2() { return multi_block_ ? l3_ : mem_; }

  /// True iff the write `g` happens-before core `c`'s current point.
  [[nodiscard]] bool ordered_before(const WriteStamp& g, CoreId c) const;
  /// Joins `src` into `dst` (element-wise max).
  static void join(std::vector<std::uint64_t>& dst,
                   const std::vector<std::uint64_t>& src);
  /// Advances c's own epoch (release bump), enforcing the wrap guard.
  void bump_epoch(CoreId c);
  /// Records a sync edge label; returns its index.
  std::uint32_t note_edge(const char* kind, const char* dir, SyncId id,
                          CoreId c);
  [[nodiscard]] std::string edge_label(std::uint32_t e) const;

  void record(OracleViolation v);
  void check_load_word(CoreId c, Addr line, int w, const StampMap& visible);
  [[nodiscard]] BlockId block_of(CoreId c) const {
    return cores_per_block_ > 0 ? c / cores_per_block_ : 0;
  }

  // --- Overlapped-mode internals -------------------------------------------
  /// One buffered memory hook. POD; `racy` is the Figure-6b declaration,
  /// consumed from racy_next_ when the event is ISSUED (not when applied):
  /// with several racy marks in flight in one quantum, apply-time
  /// consumption would pair marks with the wrong accesses.
  struct DeferredEvent {
    enum class K : std::uint8_t {
      Store, Load, FillL1, FillL2, FillL3,
      WbL1L2, WbL2L3, WbL3Mem, InvL1, InvL2
    };
    K kind;
    bool racy;
    std::int32_t who;    ///< CoreId (L1-side events) or BlockId (L2-side)
    Addr addr;           ///< access address (Store/Load) or line address
    std::uint64_t arg;   ///< bytes (Store/Load) or dirty-word mask (Wb*)
  };
  /// A quantum's complete buffered hook stream, keyed by its dispatch seq.
  struct QuantumBuf {
    std::uint64_t seq = 0;
    std::vector<DeferredEvent> events;
  };

  /// Pushes onto the calling worker's open buffer; false in serialized /
  /// direct mode (caller then applies inline).
  bool buffered(DeferredEvent::K kind, std::int32_t who, Addr addr,
                std::uint64_t arg, bool racy = false) {
    if (!overlap_ || t_buf_ == nullptr) return false;
    t_buf_->events.push_back({kind, racy, who, addr, arg});
    return true;
  }
  /// Mutation bodies shared by the inline path and apply().
  void do_store(CoreId c, Addr a, std::uint32_t bytes, bool racy);
  void do_load(CoreId c, Addr a, std::uint32_t bytes);
  void apply(const DeferredEvent& e);
  /// Applies the contiguous ready prefix of pending_ (overlap_mu_ held).
  void apply_ready_locked();

  bool overlap_ = false;
  std::mutex overlap_mu_;  ///< guards pending_/free_bufs_/open_/apply_next_
  std::map<std::uint64_t, std::unique_ptr<QuantumBuf>> pending_;
  std::vector<std::unique_ptr<QuantumBuf>> free_bufs_;  ///< recycled buffers
  std::vector<QuantumBuf*> open_;  ///< live worker buffers (abort reclaim)
  std::uint64_t apply_next_ = 0;   ///< seq the apply cursor waits for
  static thread_local QuantumBuf* t_buf_;  ///< calling worker's open buffer

  // Configuration.
  std::uint32_t line_bytes_ = 64;
  int cores_ = 0;
  int blocks_ = 0;
  int cores_per_block_ = 0;
  bool multi_block_ = false;
  bool coherent_ = false;
  std::uint64_t epoch_limit_ = std::uint64_t{1} << 62;
  SimStats* stats_ = nullptr;
  FaultPlan* plan_ = nullptr;

  // Happens-before state.
  std::vector<std::vector<std::uint64_t>> vc_;  ///< vc_[core][core']
  std::unordered_map<SyncId, std::vector<std::uint64_t>> sync_clock_;
  std::uint64_t seq_ = 0;  ///< global write counter (0 = initial values)
  /// Per-core "next access is declared racy" flags. uint8_t, not bool:
  /// vector<bool> packs bits, and under the sharded engine different cores'
  /// flags are touched concurrently from different workers (each core's own
  /// flag only ever from its worker), so elements must not share bytes.
  std::vector<std::uint8_t> racy_next_;
  std::vector<std::uint32_t> last_acquire_;  ///< per-core edge index
  std::vector<std::uint32_t> last_release_;
  /// One entry per sync operation, rendered lazily by edge_label().
  struct Edge {
    const char* kind;
    const char* dir;
    SyncId id;
    CoreId core;
  };
  std::vector<Edge> edges_;

  // Stamp shadows, parallel to the data locations.
  StampMap global_;             ///< the truth: latest write per word
  std::vector<StampMap> l1_;    ///< per core
  std::vector<StampMap> l2_;    ///< per block
  StampMap l3_;
  StampMap mem_;

  // Results.
  std::vector<OracleViolation> violations_;
  std::unordered_map<std::string, std::size_t> dedup_;
  std::uint64_t total_ = 0;
  std::uint64_t n_stale_ = 0;  ///< occurrence counts, per kind
  std::uint64_t n_race_ = 0;
  std::uint64_t n_lost_ = 0;
};

}  // namespace hic
