#include "verify/oracle.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "fault/fault_plan.hpp"
#include "stats/sim_stats.hpp"

namespace hic {

thread_local CoherenceOracle::QuantumBuf* CoherenceOracle::t_buf_ = nullptr;

const char* to_string(OracleViolation::Kind k) {
  switch (k) {
    case OracleViolation::Kind::StaleRead: return "stale-read";
    case OracleViolation::Kind::WriteRace: return "write-race";
    case OracleViolation::Kind::LostUpdate: return "lost-update";
  }
  return "?";
}

void CoherenceOracle::bind(const MachineConfig& mc, SimStats* stats,
                           FaultPlan* plan, bool coherent) {
  line_bytes_ = mc.l1.line_bytes;
  cores_ = mc.total_cores();
  blocks_ = mc.blocks;
  cores_per_block_ = mc.cores_per_block;
  multi_block_ = mc.multi_block();
  coherent_ = coherent;
  stats_ = stats;
  plan_ = plan;
  vc_.assign(idx(cores_), std::vector<std::uint64_t>(idx(cores_), 0));
  // Each core's own epoch starts at 1: epoch 0 is reserved for the pre-run
  // initial values, which are ordered before everything.
  for (int c = 0; c < cores_; ++c) vc_[idx(c)][idx(c)] = 1;
  racy_next_.assign(idx(cores_), 0);
  last_acquire_.assign(idx(cores_), WriteStamp::kNoEdge);
  last_release_.assign(idx(cores_), WriteStamp::kNoEdge);
  l1_.assign(idx(cores_), StampMap{});
  l2_.assign(idx(blocks_), StampMap{});
}

// --- Happens-before maintenance ------------------------------------------------

void CoherenceOracle::join(std::vector<std::uint64_t>& dst,
                           const std::vector<std::uint64_t>& src) {
  if (src.empty()) return;
  for (std::size_t i = 0; i < dst.size(); ++i)
    dst[i] = std::max(dst[i], src[i]);
}

void CoherenceOracle::bump_epoch(CoreId c) {
  std::uint64_t& e = vc_[idx(c)][idx(c)];
  ++e;
  HIC_CHECK_MSG(e < epoch_limit_,
                "coherence oracle: core " << c << " epoch counter reached the "
                << "configured limit (" << epoch_limit_
                << ") — wrap guard tripped");
}

std::uint32_t CoherenceOracle::note_edge(const char* kind, const char* dir,
                                         SyncId id, CoreId c) {
  edges_.push_back({kind, dir, id, c});
  return static_cast<std::uint32_t>(edges_.size() - 1);
}

std::string CoherenceOracle::edge_label(std::uint32_t e) const {
  if (e == WriteStamp::kNoEdge || e >= edges_.size()) return "(no sync edge)";
  const Edge& ed = edges_[e];
  std::ostringstream os;
  os << ed.kind << ' ' << ed.id << ' ' << ed.dir << " by core " << ed.core
     << " [sync op #" << e << ']';
  return os.str();
}

void CoherenceOracle::on_lock_acquire(CoreId c, SyncId id) {
  join(vc_[idx(c)], sync_clock_[id]);
  last_acquire_[idx(c)] = note_edge("lock", "acquire", id, c);
}

void CoherenceOracle::on_lock_release(CoreId c, SyncId id) {
  auto& l = sync_clock_[id];
  l.resize(idx(cores_), 0);
  join(l, vc_[idx(c)]);
  last_release_[idx(c)] = note_edge("lock", "release", id, c);
  bump_epoch(c);
}

void CoherenceOracle::on_barrier_arrive(CoreId c, SyncId id) {
  auto& b = sync_clock_[id];
  b.resize(idx(cores_), 0);
  join(b, vc_[idx(c)]);
  last_release_[idx(c)] = note_edge("barrier", "arrive", id, c);
}

void CoherenceOracle::on_barrier_complete(SyncId id,
                                          std::span<const CoreId> released) {
  const auto& b = sync_clock_[id];
  for (CoreId w : released) {
    join(vc_[idx(w)], b);
    last_acquire_[idx(w)] = note_edge("barrier", "leave", id, w);
    bump_epoch(w);
  }
}

void CoherenceOracle::on_flag_set(CoreId c, SyncId id) {
  auto& l = sync_clock_[id];
  l.resize(idx(cores_), 0);
  join(l, vc_[idx(c)]);
  last_release_[idx(c)] = note_edge("flag", "set", id, c);
  bump_epoch(c);
}

void CoherenceOracle::on_flag_wait(CoreId c, SyncId id) {
  join(vc_[idx(c)], sync_clock_[id]);
  last_acquire_[idx(c)] = note_edge("flag", "wait", id, c);
}

void CoherenceOracle::on_flag_add(CoreId c, SyncId id) {
  auto& l = sync_clock_[id];
  l.resize(idx(cores_), 0);
  join(vc_[idx(c)], l);  // acquire: a fetch-add reads prior setters
  join(l, vc_[idx(c)]);  // release: and publishes this core's past
  last_acquire_[idx(c)] = note_edge("flag", "add-acquire", id, c);
  last_release_[idx(c)] = note_edge("flag", "add-release", id, c);
  bump_epoch(c);
}

bool CoherenceOracle::ordered_before(const WriteStamp& g, CoreId c) const {
  if (g.core == kInvalidCore || g.core == c) return true;
  return g.epoch <= vc_[idx(c)][idx(g.core)];
}

// --- Stamp plumbing ------------------------------------------------------------

CoherenceOracle::StampLine& CoherenceOracle::stamps(StampMap& m, Addr line) {
  auto [it, inserted] = m.try_emplace(line);
  if (inserted) it->second.assign(words_per_line(), WriteStamp{});
  return it->second;
}

WriteStamp CoherenceOracle::peek(const StampMap& m, Addr line, int w) const {
  const auto it = m.find(line);
  if (it == m.end()) return WriteStamp{};
  return it->second[idx(w)];
}

void CoherenceOracle::copy_line(StampMap& dst, const StampMap& src,
                                Addr line) {
  const auto it = src.find(line);
  if (it == src.end()) {
    dst.erase(line);  // absent = the initial stamps
  } else {
    dst[line] = it->second;
  }
}

void CoherenceOracle::merge_up(StampMap& dst, const StampMap& src, Addr line,
                               std::uint64_t mask, const char* level) {
  if (mask == 0) return;
  const auto sit = src.find(line);
  if (sit == src.end()) return;  // untracked source: nothing to move
  StampLine& d = stamps(dst, line);
  for (std::uint32_t w = 0; w < words_per_line(); ++w) {
    if ((mask & (1ULL << w)) == 0) continue;
    const WriteStamp& s = sit->second[w];
    if (s.seq == 0) continue;  // dirty word never stamped (defensive)
    WriteStamp& dd = d[w];
    if (dd.seq > s.seq && !dd.racy && !s.racy) {
      // An older dirty copy is overwriting a newer update at this level:
      // the classic dirty-residue lost update (a WB was missing before the
      // pushing core's release edge).
      OracleViolation v;
      v.kind = OracleViolation::Kind::LostUpdate;
      v.line = line;
      v.word = static_cast<int>(w);
      v.addr = line + w * kWordBytes;
      v.observer = s.core;
      v.seen = s;
      v.truth = dd;
      v.edge = s.core >= 0 ? edge_label(last_release_[idx(s.core)])
                           : std::string("(no sync edge)");
      std::ostringstream sg;
      sg << "core " << s.core << " pushed a stale dirty copy into the "
         << level << "; add a WB (wb_range/wb_all) on core " << s.core
         << " before its release edge so the dirty residue is published "
            "before core "
         << dd.core << "'s newer update";
      v.suggest = sg.str();
      record(std::move(v));
    }
    dd = s;  // the data moved regardless; mirror it
  }
}

void CoherenceOracle::on_fill_l1(CoreId c, Addr line) {
  if (buffered(DeferredEvent::K::FillL1, c, line, 0)) return;
  copy_line(l1_[idx(c)], l2_[idx(block_of(c))], line);
}

void CoherenceOracle::on_fill_l2(BlockId b, Addr line) {
  if (buffered(DeferredEvent::K::FillL2, b, line, 0)) return;
  copy_line(l2_[idx(b)], below_l2(), line);
}

void CoherenceOracle::on_fill_l3(Addr line) {
  if (buffered(DeferredEvent::K::FillL3, 0, line, 0)) return;
  copy_line(l3_, mem_, line);
}

void CoherenceOracle::on_wb_l1_to_l2(CoreId c, Addr line, std::uint64_t mask) {
  if (buffered(DeferredEvent::K::WbL1L2, c, line, mask)) return;
  merge_up(l2_[idx(block_of(c))], l1_[idx(c)], line, mask, "block L2");
}

void CoherenceOracle::on_wb_l2_to_l3(BlockId b, Addr line,
                                     std::uint64_t mask) {
  if (buffered(DeferredEvent::K::WbL2L3, b, line, mask)) return;
  merge_up(below_l2(), l2_[idx(b)], line, mask,
           multi_block_ ? "L3" : "memory");
}

void CoherenceOracle::on_wb_l3_to_mem(Addr line, std::uint64_t mask) {
  if (buffered(DeferredEvent::K::WbL3Mem, 0, line, mask)) return;
  merge_up(mem_, l3_, line, mask, "memory");
}

void CoherenceOracle::on_inv_l1(CoreId c, Addr line) {
  if (buffered(DeferredEvent::K::InvL1, c, line, 0)) return;
  l1_[idx(c)].erase(line);
}

void CoherenceOracle::on_inv_l2(BlockId b, Addr line) {
  if (buffered(DeferredEvent::K::InvL2, b, line, 0)) return;
  l2_[idx(b)].erase(line);
}

// --- Access checks -------------------------------------------------------------

void CoherenceOracle::on_store(CoreId c, Addr a, std::uint32_t bytes) {
  // The racy declaration is consumed HERE, at issue, even when the event is
  // deferred: the flag pairs with this specific access in program order.
  const bool racy = racy_next_[idx(c)] != 0;
  racy_next_[idx(c)] = 0;
  if (buffered(DeferredEvent::K::Store, c, a, bytes, racy)) return;
  do_store(c, a, bytes, racy);
}

void CoherenceOracle::do_store(CoreId c, Addr a, std::uint32_t bytes,
                               bool racy) {
  const Addr line = line_of(a);
  StampLine& gl = stamps(global_, line);
  StampLine& own = stamps(l1_[idx(c)], line);
  const std::uint32_t first = static_cast<std::uint32_t>(a - line) / kWordBytes;
  const std::uint32_t last =
      static_cast<std::uint32_t>(a - line + bytes - 1) / kWordBytes;
  for (std::uint32_t w = first; w <= last; ++w) {
    const WriteStamp prev = gl[w];
    if (!racy && !prev.racy && prev.core != kInvalidCore && prev.core != c &&
        prev.epoch > vc_[idx(c)][idx(prev.core)]) {
      OracleViolation v;
      v.kind = OracleViolation::Kind::WriteRace;
      v.line = line;
      v.word = static_cast<int>(w);
      v.addr = line + w * kWordBytes;
      v.observer = c;
      v.seen = prev;
      v.truth = WriteStamp{c, vc_[idx(c)][idx(c)], seq_ + 1,
                           last_release_[idx(c)], false};
      v.edge = edge_label(last_acquire_[idx(c)]);
      std::ostringstream sg;
      sg << "cores " << prev.core << " and " << c << " write this word in "
         << "concurrent epochs; order them with a lock/barrier, or mark the "
            "accesses racy_store/racy_load (Figure 6b) if the race is "
            "intended";
      v.suggest = sg.str();
      record(std::move(v));
    }
    ++seq_;
    const WriteStamp s{c, vc_[idx(c)][idx(c)], seq_, last_release_[idx(c)],
                       racy};
    gl[w] = s;
    own[w] = s;
  }
}

void CoherenceOracle::check_load_word(CoreId c, Addr line, int w,
                                      const StampMap& visible) {
  const WriteStamp g = peek(global_, line, w);
  if (g.seq == 0) return;           // initial value everywhere: consistent
  if (!ordered_before(g, c)) return;  // concurrent write: not required visible
  const WriteStamp vis = peek(visible, line, w);
  if (vis.seq == g.seq) return;
  // The HB-latest write is not the copy this core observes: a stale read,
  // detected with no value comparison at all.
  OracleViolation v;
  v.kind = OracleViolation::Kind::StaleRead;
  v.line = line;
  v.word = w;
  v.addr = line + static_cast<Addr>(w) * kWordBytes;
  v.observer = c;
  v.seen = vis;
  v.truth = g;
  // Diagnose which half of the contract broke: if the fresh stamp already
  // reached this block's L2, the reader's INV side is missing; otherwise the
  // writer's WB side never published it.
  const WriteStamp at_l2 = peek(l2_[idx(block_of(c))], line, w);
  std::ostringstream sg;
  if (at_l2.seq == g.seq) {
    v.edge = edge_label(last_acquire_[idx(c)]);
    sg << "the fresh data reached core " << c << "'s block L2 but its L1 "
       << "still holds the stale copy; add an INV (inv_range/inv_all) on "
       << "core " << c << " after its acquire edge";
  } else if (g.core >= 0) {
    v.edge = edge_label(last_release_[idx(g.core)]);
    sg << "core " << g.core << "'s write never reached the shared level; "
       << "add a WB (wb_range/wb_all) on core " << g.core
       << " before its release edge";
  } else {
    v.edge = "(no sync edge)";
    sg << "the initial value was never published";
  }
  v.suggest = sg.str();
  record(std::move(v));
}

void CoherenceOracle::on_load(CoreId c, Addr a, std::uint32_t bytes) {
  if (racy_next_[idx(c)] != 0) {  // declared racy: unordered by construction
    racy_next_[idx(c)] = 0;      // no checks, nothing to defer
    return;
  }
  if (buffered(DeferredEvent::K::Load, c, a, bytes)) return;
  do_load(c, a, bytes);
}

void CoherenceOracle::do_load(CoreId c, Addr a, std::uint32_t bytes) {
  const Addr line = line_of(a);
  const std::uint32_t first = static_cast<std::uint32_t>(a - line) / kWordBytes;
  const std::uint32_t last =
      static_cast<std::uint32_t>(a - line + bytes - 1) / kWordBytes;
  for (std::uint32_t w = first; w <= last; ++w)
    check_load_word(c, line, static_cast<int>(w), l1_[idx(c)]);
}

void CoherenceOracle::on_dma(CoreId initiator, BlockId src_block, Addr src,
                             BlockId dst_block, Addr dst,
                             std::uint64_t bytes) {
  for (std::uint64_t off = 0; off < bytes; off += kWordBytes) {
    // Source side: the DMA engine read through the source block's L2 — an
    // unpublished producer write upstream is a stale read by the DMA.
    const Addr sa = src + off;
    const Addr sline = line_of(sa);
    const int sw = static_cast<int>((sa - sline) / kWordBytes);
    check_load_word(initiator, sline, sw, l2_[idx(src_block)]);
    // Destination side: the deposit is a fresh write into the destination
    // block's L2 (and the global truth — the hierarchy updated the shadow).
    const Addr da = dst + off;
    const Addr dline = line_of(da);
    const std::uint32_t dw =
        static_cast<std::uint32_t>((da - dline) / kWordBytes);
    StampLine& gl = stamps(global_, dline);
    ++seq_;
    const WriteStamp s{initiator, vc_[idx(initiator)][idx(initiator)], seq_,
                       last_release_[idx(initiator)], false};
    gl[dw] = s;
    stamps(l2_[idx(dst_block)], dline)[dw] = s;
  }
}

// --- Overlapped verification ---------------------------------------------------

void CoherenceOracle::apply(const DeferredEvent& e) {
  using K = DeferredEvent::K;
  switch (e.kind) {
    case K::Store:
      do_store(e.who, e.addr, static_cast<std::uint32_t>(e.arg), e.racy);
      break;
    case K::Load:
      do_load(e.who, e.addr, static_cast<std::uint32_t>(e.arg));
      break;
    case K::FillL1:
      copy_line(l1_[idx(e.who)], l2_[idx(block_of(e.who))], e.addr);
      break;
    case K::FillL2: copy_line(l2_[idx(e.who)], below_l2(), e.addr); break;
    case K::FillL3: copy_line(l3_, mem_, e.addr); break;
    case K::WbL1L2:
      merge_up(l2_[idx(block_of(e.who))], l1_[idx(e.who)], e.addr, e.arg,
               "block L2");
      break;
    case K::WbL2L3:
      merge_up(below_l2(), l2_[idx(e.who)], e.addr, e.arg,
               multi_block_ ? "L3" : "memory");
      break;
    case K::WbL3Mem: merge_up(mem_, l3_, e.addr, e.arg, "memory"); break;
    case K::InvL1: l1_[idx(e.who)].erase(e.addr); break;
    case K::InvL2: l2_[idx(e.who)].erase(e.addr); break;
  }
}

void CoherenceOracle::apply_ready_locked() {
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == apply_next_;
       it = pending_.begin()) {
    std::unique_ptr<QuantumBuf> b = std::move(it->second);
    pending_.erase(it);
    for (const DeferredEvent& e : b->events) apply(e);
    ++apply_next_;
    b->events.clear();
    free_bufs_.push_back(std::move(b));
  }
}

void CoherenceOracle::begin_overlap(std::uint64_t first_seq) {
  std::lock_guard<std::mutex> g(overlap_mu_);
  HIC_CHECK(!overlap_ && pending_.empty() && open_.empty());
  overlap_ = true;
  apply_next_ = first_seq;
}

void CoherenceOracle::quantum_begin(std::uint64_t seq) {
  if (!overlap_) return;
  HIC_CHECK(t_buf_ == nullptr);
  std::unique_ptr<QuantumBuf> b;
  {
    std::lock_guard<std::mutex> g(overlap_mu_);
    if (!free_bufs_.empty()) {
      b = std::move(free_bufs_.back());
      free_bufs_.pop_back();
    }
  }
  if (b == nullptr) b = std::make_unique<QuantumBuf>();
  b->seq = seq;
  b->events.clear();
  {
    std::lock_guard<std::mutex> g(overlap_mu_);
    open_.push_back(b.get());
  }
  t_buf_ = b.release();
}

void CoherenceOracle::quantum_end() {
  if (!overlap_ || t_buf_ == nullptr) return;
  std::unique_ptr<QuantumBuf> b(t_buf_);
  t_buf_ = nullptr;
  std::lock_guard<std::mutex> g(overlap_mu_);
  std::erase(open_, b.get());
  const std::uint64_t s = b->seq;
  pending_.emplace(s, std::move(b));
  // Drain whatever became contiguous. The enqueue (release) / drain
  // (acquire) pair on overlap_mu_ is also the happens-before edge that lets
  // one worker apply events another worker buffered without a lock.
  apply_ready_locked();
}

void CoherenceOracle::sync_flush(std::uint64_t seq) {
  if (!overlap_) return;
  std::lock_guard<std::mutex> g(overlap_mu_);
  // The caller holds the engine's strict order gate, so every quantum armed
  // before `seq` has retired and enqueued its buffer: the prefix is
  // contiguous by construction, and a hole is a scheduler bug.
  while (apply_next_ < seq) {
    const auto it = pending_.find(apply_next_);
    HIC_CHECK_MSG(it != pending_.end(),
                  "oracle sync_flush: quantum " << apply_next_
                  << " missing below sync point " << seq);
    std::unique_ptr<QuantumBuf> b = std::move(it->second);
    pending_.erase(it);
    for (const DeferredEvent& e : b->events) apply(e);
    ++apply_next_;
    b->events.clear();
    free_bufs_.push_back(std::move(b));
  }
  // Then the caller's own partial buffer: the inline sync hook about to run
  // must observe these events as already applied, exactly as in a serial
  // run. The buffer stays open; later events keep accumulating and land at
  // quantum_end, when apply_next_ == seq admits them.
  if (QuantumBuf* b = t_buf_; b != nullptr) {
    HIC_CHECK(b->seq == seq && apply_next_ == seq);
    for (const DeferredEvent& e : b->events) apply(e);
    b->events.clear();
  }
}

void CoherenceOracle::end_overlap(bool aborted) {
  std::lock_guard<std::mutex> g(overlap_mu_);
  if (!overlap_) return;
  overlap_ = false;
  if (aborted) {
    // Workers are already joined: buffers still registered as open never
    // reached quantum_end (exception unwind); reclaim them, and drop any
    // pending tail that will never become contiguous.
    for (QuantumBuf* b : open_) delete b;
    open_.clear();
    pending_.clear();
  } else {
    HIC_CHECK_MSG(open_.empty() && pending_.empty(),
                  "oracle end_overlap: " << open_.size() << " open / "
                  << pending_.size() << " pending buffers left behind");
  }
  free_bufs_.clear();
}

// --- Results -------------------------------------------------------------------

void CoherenceOracle::record(OracleViolation v) {
  ++total_;
  switch (v.kind) {
    case OracleViolation::Kind::StaleRead:
      ++n_stale_;
      if (stats_ != nullptr) ++stats_->ops().oracle_stale_reads;
      break;
    case OracleViolation::Kind::WriteRace:
      ++n_race_;
      if (stats_ != nullptr) ++stats_->ops().oracle_write_races;
      break;
    case OracleViolation::Kind::LostUpdate:
      ++n_lost_;
      if (stats_ != nullptr) ++stats_->ops().oracle_lost_updates;
      break;
  }
  std::ostringstream key;
  key << to_string(v.kind) << '|' << v.addr << '|' << v.observer << '|'
      << v.seen.core << '|' << v.truth.core;
  const auto it = dedup_.find(key.str());
  if (it != dedup_.end()) {
    ++violations_[it->second].count;
    return;
  }
  dedup_.emplace(key.str(), violations_.size());
  // Attribute the violation to the fault plan once per distinct finding, so
  // injected drop/corrupt faults on this line — and any armed elide-wb /
  // elide-inv mutation — count as detected rather than silent.
  if (plan_ != nullptr) plan_->on_oracle_violation(v.line);
  violations_.push_back(std::move(v));
}

namespace {
void render_stamp(std::ostream& os, const WriteStamp& s) {
  if (s.core == kInvalidCore && s.seq == 0) {
    os << "(initial value)";
    return;
  }
  os << "(core " << s.core << ", epoch " << s.epoch << ", write #" << s.seq;
  if (s.racy) os << ", racy";
  os << ')';
}
}  // namespace

std::string CoherenceOracle::report() const {
  std::ostringstream os;
  os << "coherence oracle: " << total_ << " violation(s) — " << n_stale_
     << " stale read(s), " << n_race_ << " write race(s), " << n_lost_
     << " lost update(s)\n";
  constexpr std::size_t kMaxDetailed = 50;
  for (std::size_t i = 0; i < violations_.size() && i < kMaxDetailed; ++i) {
    const OracleViolation& v = violations_[i];
    os << "  [" << i + 1 << "] " << to_string(v.kind) << " at 0x" << std::hex
       << v.addr << std::dec << " (word " << v.word << " of line 0x"
       << std::hex << v.line << std::dec << ") core " << v.observer
       << ": saw ";
    render_stamp(os, v.seen);
    os << ", expected ";
    render_stamp(os, v.truth);
    if (v.count > 1) os << "  [x" << v.count << ']';
    os << "\n      edge: " << v.edge << "\n      fix:  " << v.suggest << '\n';
  }
  if (violations_.size() > kMaxDetailed) {
    os << "  ... " << violations_.size() - kMaxDetailed
       << " further distinct violation(s) suppressed (full list in the JSON "
          "log)\n";
  }
  return os.str();
}

namespace {
void stamp_json(std::ostream& os, const char* key, const WriteStamp& s) {
  os << '"' << key << "\":{\"core\":" << s.core << ",\"epoch\":" << s.epoch
     << ",\"seq\":" << s.seq << ",\"racy\":" << (s.racy ? "true" : "false")
     << '}';
}
void escape_json(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}
}  // namespace

std::string CoherenceOracle::to_json() const {
  std::ostringstream os;
  os << "{\"oracle_schema\":1,\"total\":" << total_
     << ",\"stale_reads\":" << n_stale_ << ",\"write_races\":" << n_race_
     << ",\"lost_updates\":" << n_lost_ << ",\"violations\":[";
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    const OracleViolation& v = violations_[i];
    if (i > 0) os << ',';
    os << "{\"kind\":\"" << to_string(v.kind) << "\",\"addr\":" << v.addr
       << ",\"line\":" << v.line << ",\"word\":" << v.word
       << ",\"core\":" << v.observer << ",\"count\":" << v.count << ',';
    stamp_json(os, "seen", v.seen);
    os << ',';
    stamp_json(os, "expected", v.truth);
    os << ",\"edge\":\"";
    escape_json(os, v.edge);
    os << "\",\"suggest\":\"";
    escape_json(os, v.suggest);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hic
