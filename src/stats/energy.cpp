#include "stats/energy.hpp"

#include <sstream>

namespace hic {

EnergyBreakdown estimate_energy(const SimStats& stats,
                                const EnergyParams& p) {
  const OpCounts& o = stats.ops();
  EnergyBreakdown e;

  // Every load/store touches the L1; misses and explicit line moves touch
  // the levels below. Writebacks and invalidations of lines also read or
  // write the arrays.
  const double l1_accesses =
      static_cast<double>(o.loads + o.stores + o.lines_written_back +
                          o.lines_invalidated);
  const double l2_accesses = static_cast<double>(
      o.l1_misses + o.lines_written_back + o.l2_misses);
  const double l3_accesses =
      static_cast<double>(o.l2_misses + o.l3_misses + o.global_wb_lines);
  e.cache_pj = l1_accesses * p.l1_access_pj + l2_accesses * p.l2_access_pj +
               l3_accesses * p.l3_access_pj;

  e.network_pj = static_cast<double>(stats.traffic().total()) * p.avg_hops *
                 p.flit_hop_pj;

  e.dram_pj = static_cast<double>(
                  stats.traffic().get(TrafficKind::Memory)) /
              5.0 /* flits per line transfer */ * p.dram_access_pj;

  e.control_pj =
      static_cast<double>(o.dir_invalidations_sent) * p.dir_lookup_pj +
      static_cast<double>(o.meb_wbs + o.ieb_refreshes + o.ieb_evictions) *
          p.buffer_lookup_pj;
  return e;
}

std::string energy_report(const EnergyBreakdown& e) {
  std::ostringstream os;
  os << "estimated dynamic energy: " << e.total_uj() << " uJ\n"
     << "  cache arrays: " << e.cache_pj * 1e-6 << " uJ\n"
     << "  network:      " << e.network_pj * 1e-6 << " uJ\n"
     << "  dram:         " << e.dram_pj * 1e-6 << " uJ\n"
     << "  control:      " << e.control_pj * 1e-6 << " uJ\n";
  return os.str();
}

}  // namespace hic
