#include "stats/host_perf.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/check.hpp"

namespace hic {

HostPerfResult time_runs(int repeats,
                         const std::function<Cycle()>& run_once) {
  HIC_CHECK(repeats > 0);
  HostPerfResult r;
  r.samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const Cycle cycles = run_once();
    const auto t1 = std::chrono::steady_clock::now();
    HostPerfSample s;
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    s.cycles = cycles;
    HIC_CHECK_MSG(i == 0 || cycles == r.samples.front().cycles,
                  "non-deterministic run: repeat " << i << " produced "
                      << cycles << " cycles, repeat 0 produced "
                      << r.samples.front().cycles);
    r.samples.push_back(s);
  }
  std::vector<double> secs;
  secs.reserve(r.samples.size());
  for (const auto& s : r.samples) secs.push_back(s.seconds);
  std::sort(secs.begin(), secs.end());
  r.min_seconds = secs.front();
  r.median_seconds = secs[secs.size() / 2];
  r.cycles = r.samples.front().cycles;
  r.cycles_per_second =
      r.median_seconds > 0 ? static_cast<double>(r.cycles) / r.median_seconds
                           : 0.0;
  return r;
}

std::string to_json(const HostPerfResult& r) {
  std::ostringstream os;
  os.precision(6);
  os << "{\"cycles\":" << r.cycles
     << ",\"median_seconds\":" << r.median_seconds
     << ",\"min_seconds\":" << r.min_seconds
     << ",\"cycles_per_second\":" << r.cycles_per_second
     << ",\"samples_seconds\":[";
  for (std::size_t i = 0; i < r.samples.size(); ++i) {
    if (i != 0) os << ',';
    os << r.samples[i].seconds;
  }
  os << "]}";
  return os.str();
}

}  // namespace hic
