// Host-side performance measurement: how many simulated cycles per second
// of host wall-clock the simulator sustains. This measures the *simulator*
// (scheduling, cache bookkeeping, allocation behaviour), not the simulated
// machine — the simulated cycle counts of a deterministic run never change
// with host speed (docs/performance.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hic {

/// One timed run: host seconds and the simulated cycles it produced.
struct HostPerfSample {
  double seconds = 0;
  Cycle cycles = 0;
};

/// Aggregate over N repeats of the same deterministic run.
struct HostPerfResult {
  std::vector<HostPerfSample> samples;
  double median_seconds = 0;
  double min_seconds = 0;
  Cycle cycles = 0;  ///< simulated cycles (identical across repeats)
  /// The headline number: simulated cycles / median host seconds.
  double cycles_per_second = 0;
};

/// Times `repeats` invocations of `run_once` (which performs one full
/// simulation and returns its simulated cycle count) under a steady clock.
/// Checks that every repeat produced the same cycle count — a perf harness
/// on a deterministic simulator doubles as a determinism canary.
HostPerfResult time_runs(int repeats, const std::function<Cycle()>& run_once);

/// {"cycles":..,"median_seconds":..,"min_seconds":..,
///  "cycles_per_second":..,"samples_seconds":[..]}
std::string to_json(const HostPerfResult& r);

}  // namespace hic
