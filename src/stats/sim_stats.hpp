// Statistics collected during a simulation run.
//
// The categories mirror the paper's evaluation figures exactly:
//   - StallKind: the 5-way execution-time breakdown of Figure 9
//     (INV stall, WB stall, lock stall, barrier stall, rest)
//   - TrafficKind: the 4-way flit breakdown of Figure 10
//     (memory, linefill, writeback, invalidation)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace hic {

enum class StallKind : std::uint8_t {
  Rest = 0,      ///< useful execution + ordinary miss time
  InvStall,      ///< executing INV flavors (incl. IEB-forced refreshes)
  WbStall,       ///< executing/draining WB flavors
  LockStall,     ///< waiting for a lock grant
  BarrierStall,  ///< waiting at a barrier
  kCount
};
inline constexpr std::size_t kStallKinds =
    static_cast<std::size_t>(StallKind::kCount);
const char* to_string(StallKind k);

enum class TrafficKind : std::uint8_t {
  Linefill = 0,  ///< data moving down into an L1/L2 on a miss
  Writeback,     ///< dirty data moving up toward shared levels
  Invalidation,  ///< coherence control messages (HCC only)
  Memory,        ///< on-chip <-> off-chip memory transfers
  Sync,          ///< synchronization request/response messages
  kCount
};
inline constexpr std::size_t kTrafficKinds =
    static_cast<std::size_t>(TrafficKind::kCount);
const char* to_string(TrafficKind k);

/// Per-core cycle attribution. `total()` equals the core's local clock at the
/// end of the run; the engine guarantees every elapsed cycle lands in exactly
/// one bucket.
class StallAccount {
 public:
  void add(StallKind k, Cycle cycles) {
    cycles_[static_cast<std::size_t>(k)] += cycles;
  }
  [[nodiscard]] Cycle get(StallKind k) const {
    return cycles_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] Cycle total() const {
    Cycle t = 0;
    for (auto c : cycles_) t += c;
    return t;
  }
  void clear() { cycles_.fill(0); }

 private:
  std::array<Cycle, kStallKinds> cycles_{};
};

/// Global flit counters by category.
class TrafficAccount {
 public:
  void add(TrafficKind k, std::uint64_t flits) {
    flits_[static_cast<std::size_t>(k)] += flits;
  }
  [[nodiscard]] std::uint64_t get(TrafficKind k) const {
    return flits_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto f : flits_) t += f;
    return t;
  }
  void clear() { flits_.fill(0); }

 private:
  std::array<std::uint64_t, kTrafficKinds> flits_{};
};

/// Event counters relevant to the evaluation.
struct OpCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t l3_misses = 0;
  std::uint64_t wb_ops = 0;          ///< WB instructions executed
  std::uint64_t inv_ops = 0;         ///< INV instructions executed
  std::uint64_t lines_written_back = 0;
  std::uint64_t lines_invalidated = 0;
  std::uint64_t words_written_back = 0;
  /// Figure 11 counters: WBs that reached L3 / INVs that cleared L2.
  std::uint64_t global_wb_lines = 0;
  std::uint64_t global_inv_lines = 0;
  /// Level-adaptive ops resolved to local (same-block) scope by ThreadMap.
  std::uint64_t adaptive_local_wb = 0;
  std::uint64_t adaptive_global_wb = 0;
  std::uint64_t adaptive_local_inv = 0;
  std::uint64_t adaptive_global_inv = 0;
  /// MEB/IEB effectiveness.
  std::uint64_t meb_wbs = 0;        ///< WB ALLs satisfied from the MEB
  std::uint64_t meb_overflows = 0;
  std::uint64_t ieb_refreshes = 0;  ///< IEB-forced first-read refreshes
  std::uint64_t ieb_evictions = 0;
  /// HCC-only.
  std::uint64_t dir_invalidations_sent = 0;
  std::uint64_t stale_word_reads = 0;  ///< functional-mode staleness monitor
  /// Fault-injection accounting (filled by FaultPlan::reconcile): every
  /// injected fault is either detected (observed stale/corrupt) or tolerated
  /// (provably converged / timing-only) — the two always sum to injected.
  std::uint64_t injected_faults = 0;
  std::uint64_t detected_faults = 0;
  std::uint64_t tolerated_faults = 0;
  /// CoherenceOracle violations (0 unless `--verify` attaches the oracle).
  /// Unlike stale_word_reads these are value-independent: a stale read of an
  /// unchanged value and a lost update both count here.
  std::uint64_t oracle_stale_reads = 0;
  std::uint64_t oracle_write_races = 0;
  std::uint64_t oracle_lost_updates = 0;
  /// Programming-model annotation counters (Table I classification).
  std::uint64_t anno_barriers = 0;
  std::uint64_t anno_critical = 0;
  std::uint64_t anno_flag = 0;
  std::uint64_t anno_occ = 0;
  std::uint64_t anno_racy = 0;
  /// Recovery subsystem (src/resil) — all zero unless --recover attaches a
  /// ResilienceManager. The first four are per-record dispositions filled by
  /// FaultPlan::reconcile; the rest are event counters flushed by the
  /// manager at end of run.
  std::uint64_t resil_corrected = 0;      ///< single-bit ECC repairs
  std::uint64_t resil_retried = 0;        ///< WB/INVs delivered on retransmit
  std::uint64_t resil_quarantined = 0;    ///< uncorrectable, way quarantined
  std::uint64_t resil_unrecoverable = 0;  ///< gave up (exit code 7)
  std::uint64_t resil_retransmits = 0;    ///< retransmission attempts sent
  std::uint64_t resil_dup_suppressed = 0; ///< receiver-side duplicate drops
  std::uint64_t resil_scrub_passes = 0;   ///< completed scrubber sweeps
  std::uint64_t resil_scrub_corrections = 0;  ///< flips fixed by the scrubber
  std::uint64_t resil_quarantined_ways = 0;   ///< cache ways taken offline
  std::uint64_t resil_degraded_blocks = 0;    ///< blocks over error budget
  /// Request-serving surface (src/apps/serve) — all zero for the Table I
  /// kernels. Published post-run by RequestStats from per-request latency
  /// samples; latencies are nearest-rank percentiles in simulated cycles.
  std::uint64_t req_issued = 0;      ///< requests admitted by the generator
  std::uint64_t req_completed = 0;   ///< requests fully served
  std::uint64_t req_remote = 0;      ///< served across an ownership/stage hop
  std::uint64_t req_lat_p50 = 0;     ///< median request latency (cycles)
  std::uint64_t req_lat_p95 = 0;
  std::uint64_t req_lat_p99 = 0;
  std::uint64_t req_lat_max = 0;
  std::uint64_t req_qdepth_peak = 0; ///< peak arrived-but-unserved backlog
  /// Chaos-serving surface (schema v6) — request dispositions under
  /// fail-stop injection. Latency percentiles above cover *completed*
  /// requests only; timed-out/failed requests are counted here and never
  /// contribute sentinel latencies.
  std::uint64_t req_timeouts = 0;    ///< abandoned at their deadline
  std::uint64_t req_retries = 0;     ///< backoff re-attempts issued
  std::uint64_t req_hedged = 0;      ///< hedged (duplicate) attempts fired
  std::uint64_t req_hedge_wins = 0;  ///< hedge result used for the reply
  std::uint64_t req_failed = 0;      ///< gave up (victim-owned, no recovery)
  std::uint64_t slo_violations = 0;  ///< completed late or not at all
  /// Fail-stop failover accounting (filled by FaultPlan::reconcile and the
  /// serving workloads' finish() hooks). The invariant
  /// failover_injected == failover_recovered + failover_degraded +
  /// failover_failed holds on every run.
  std::uint64_t failover_injected = 0;   ///< fail-stopped cores
  std::uint64_t failover_recovered = 0;  ///< absorbed with no loss
  std::uint64_t failover_degraded = 0;   ///< completed with counted loss
  std::uint64_t failover_failed = 0;     ///< not compensated
  std::uint64_t failover_lost_dirty_lines = 0;  ///< dirty lines discarded
  std::uint64_t failover_lost_puts = 0;  ///< un-acked puts lost with victims
  std::uint64_t failover_reacquired = 0; ///< shard ranges re-acquired
};

/// One OpCounts field with its stable JSON key. op_fields() is the writable
/// twin of report.cpp's getter table: report_fields() renders counters out,
/// op_fields() lets the campaign aggregator parse per-point stats JSON back
/// in. A parity test asserts the two tables name identical "ops" keys, so a
/// counter cannot appear in one and silently vanish from the other.
struct OpField {
  const char* key;
  std::uint64_t OpCounts::* member;
};
[[nodiscard]] std::span<const OpField> op_fields();

/// A private counter sink for one host thread of the sharded engine. Global
/// counters (OpCounts, TrafficAccount) are pure commutative sums, so each
/// shard accumulates into its own lane race-free and the engine folds the
/// lanes into the main account in fixed shard order at the end of the run —
/// the totals come out identical to a single-thread run. Per-core stall
/// accounts need no lane: a core is only ever touched by its owning shard.
struct StatsLane {
  OpCounts ops;
  TrafficAccount traffic;
};

namespace detail {
/// The calling thread's counter sink (see SimStats::set_thread_lane).
/// Inline thread_local so the hot ops()/traffic() route stays one TLS load.
inline thread_local StatsLane* t_stats_lane = nullptr;
}  // namespace detail

/// How the run was executed host-side (schema v4). Purely provenance: the
/// sharded engine is bit-identical to the direct scheduler, so these fields
/// never affect simulated results — they exist so campaigns and benches can
/// assert that a `--shard-threads` run actually overlapped instead of
/// silently serializing behind an observer.
struct ShardExec {
  int requested = 0;        ///< --shard-threads (0 = direct single-thread)
  int workers = 0;          ///< effective worker count after clamping
  bool serialized = false;  ///< an observer forced one-quantum-at-a-time
};

/// Everything a run produces.
class SimStats {
 public:
  explicit SimStats(int num_cores) : stalls_(num_cores) {}

  [[nodiscard]] int num_cores() const {
    return static_cast<int>(stalls_.size());
  }
  StallAccount& stalls(CoreId c) {
    HIC_CHECK(c >= 0 && c < num_cores());
    return stalls_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const StallAccount& stalls(CoreId c) const {
    HIC_CHECK(c >= 0 && c < num_cores());
    return stalls_[static_cast<std::size_t>(c)];
  }

  /// Mutators route through the calling thread's lane when one is installed
  /// (sharded engine workers); everything else lands in the main account.
  /// Readers always see the main account — merged totals after a sharded
  /// run, live values otherwise.
  TrafficAccount& traffic() {
    StatsLane* l = thread_lane();
    return l != nullptr ? l->traffic : traffic_;
  }
  [[nodiscard]] const TrafficAccount& traffic() const { return traffic_; }

  OpCounts& ops() {
    StatsLane* l = thread_lane();
    return l != nullptr ? l->ops : ops_;
  }
  [[nodiscard]] const OpCounts& ops() const { return ops_; }

  /// Installs `lane` as the calling thread's counter sink (nullptr restores
  /// the default main-account routing). Thread-local: each sharded-engine
  /// worker installs its own lane for the duration of the run.
  static void set_thread_lane(StatsLane* lane) {
    detail::t_stats_lane = lane;
  }
  [[nodiscard]] static StatsLane* thread_lane() {
    return detail::t_stats_lane;
  }

  /// Folds a lane's counters into the main account (field-wise sums over
  /// op_fields() and every traffic kind).
  void merge_lane(const StatsLane& lane);

  /// Host-side execution provenance, stamped by the engine at end of run.
  void set_shard_exec(const ShardExec& e) { shard_exec_ = e; }
  [[nodiscard]] const ShardExec& shard_exec() const { return shard_exec_; }

  /// Cycles of the longest-running core — the run's execution time.
  [[nodiscard]] Cycle exec_cycles() const;

  /// Sum of a stall kind across cores.
  [[nodiscard]] Cycle total_stall(StallKind k) const;

  void clear();

 private:
  std::vector<StallAccount> stalls_;
  TrafficAccount traffic_;
  OpCounts ops_;
  ShardExec shard_exec_;
};

}  // namespace hic
