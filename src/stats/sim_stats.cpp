#include "stats/sim_stats.hpp"

#include <algorithm>
#include <array>

namespace hic {

namespace {
// Must list every OpCounts field, in the order report.cpp's "ops" group
// renders them (the parity test in test_extensions.cpp enforces both).
constexpr std::array kOpFields = {
    OpField{"loads", &OpCounts::loads},
    OpField{"stores", &OpCounts::stores},
    OpField{"l1_hits", &OpCounts::l1_hits},
    OpField{"l1_misses", &OpCounts::l1_misses},
    OpField{"l2_hits", &OpCounts::l2_hits},
    OpField{"l2_misses", &OpCounts::l2_misses},
    OpField{"l3_hits", &OpCounts::l3_hits},
    OpField{"l3_misses", &OpCounts::l3_misses},
    OpField{"wb_ops", &OpCounts::wb_ops},
    OpField{"inv_ops", &OpCounts::inv_ops},
    OpField{"lines_written_back", &OpCounts::lines_written_back},
    OpField{"lines_invalidated", &OpCounts::lines_invalidated},
    OpField{"words_written_back", &OpCounts::words_written_back},
    OpField{"global_wb_lines", &OpCounts::global_wb_lines},
    OpField{"global_inv_lines", &OpCounts::global_inv_lines},
    OpField{"adaptive_local_wb", &OpCounts::adaptive_local_wb},
    OpField{"adaptive_global_wb", &OpCounts::adaptive_global_wb},
    OpField{"adaptive_local_inv", &OpCounts::adaptive_local_inv},
    OpField{"adaptive_global_inv", &OpCounts::adaptive_global_inv},
    OpField{"meb_wbs", &OpCounts::meb_wbs},
    OpField{"meb_overflows", &OpCounts::meb_overflows},
    OpField{"ieb_refreshes", &OpCounts::ieb_refreshes},
    OpField{"ieb_evictions", &OpCounts::ieb_evictions},
    OpField{"dir_invalidations_sent", &OpCounts::dir_invalidations_sent},
    OpField{"stale_word_reads", &OpCounts::stale_word_reads},
    OpField{"injected_faults", &OpCounts::injected_faults},
    OpField{"detected_faults", &OpCounts::detected_faults},
    OpField{"tolerated_faults", &OpCounts::tolerated_faults},
    OpField{"oracle_stale_reads", &OpCounts::oracle_stale_reads},
    OpField{"oracle_write_races", &OpCounts::oracle_write_races},
    OpField{"oracle_lost_updates", &OpCounts::oracle_lost_updates},
    OpField{"anno_barriers", &OpCounts::anno_barriers},
    OpField{"anno_critical", &OpCounts::anno_critical},
    OpField{"anno_flag", &OpCounts::anno_flag},
    OpField{"anno_occ", &OpCounts::anno_occ},
    OpField{"anno_racy", &OpCounts::anno_racy},
    OpField{"resil_corrected", &OpCounts::resil_corrected},
    OpField{"resil_retried", &OpCounts::resil_retried},
    OpField{"resil_quarantined", &OpCounts::resil_quarantined},
    OpField{"resil_unrecoverable", &OpCounts::resil_unrecoverable},
    OpField{"resil_retransmits", &OpCounts::resil_retransmits},
    OpField{"resil_dup_suppressed", &OpCounts::resil_dup_suppressed},
    OpField{"resil_scrub_passes", &OpCounts::resil_scrub_passes},
    OpField{"resil_scrub_corrections", &OpCounts::resil_scrub_corrections},
    OpField{"resil_quarantined_ways", &OpCounts::resil_quarantined_ways},
    OpField{"resil_degraded_blocks", &OpCounts::resil_degraded_blocks},
    OpField{"req_issued", &OpCounts::req_issued},
    OpField{"req_completed", &OpCounts::req_completed},
    OpField{"req_remote", &OpCounts::req_remote},
    OpField{"req_lat_p50", &OpCounts::req_lat_p50},
    OpField{"req_lat_p95", &OpCounts::req_lat_p95},
    OpField{"req_lat_p99", &OpCounts::req_lat_p99},
    OpField{"req_lat_max", &OpCounts::req_lat_max},
    OpField{"req_qdepth_peak", &OpCounts::req_qdepth_peak},
    OpField{"req_timeouts", &OpCounts::req_timeouts},
    OpField{"req_retries", &OpCounts::req_retries},
    OpField{"req_hedged", &OpCounts::req_hedged},
    OpField{"req_hedge_wins", &OpCounts::req_hedge_wins},
    OpField{"req_failed", &OpCounts::req_failed},
    OpField{"slo_violations", &OpCounts::slo_violations},
    OpField{"failover_injected", &OpCounts::failover_injected},
    OpField{"failover_recovered", &OpCounts::failover_recovered},
    OpField{"failover_degraded", &OpCounts::failover_degraded},
    OpField{"failover_failed", &OpCounts::failover_failed},
    OpField{"failover_lost_dirty_lines", &OpCounts::failover_lost_dirty_lines},
    OpField{"failover_lost_puts", &OpCounts::failover_lost_puts},
    OpField{"failover_reacquired", &OpCounts::failover_reacquired},
};
}  // namespace

std::span<const OpField> op_fields() { return kOpFields; }

const char* to_string(StallKind k) {
  switch (k) {
    case StallKind::Rest: return "rest";
    case StallKind::InvStall: return "INV stall";
    case StallKind::WbStall: return "WB stall";
    case StallKind::LockStall: return "lock stall";
    case StallKind::BarrierStall: return "barrier stall";
    case StallKind::kCount: break;
  }
  return "?";
}

const char* to_string(TrafficKind k) {
  switch (k) {
    case TrafficKind::Linefill: return "linefill";
    case TrafficKind::Writeback: return "writeback";
    case TrafficKind::Invalidation: return "invalidation";
    case TrafficKind::Memory: return "memory";
    case TrafficKind::Sync: return "sync";
    case TrafficKind::kCount: break;
  }
  return "?";
}

void SimStats::merge_lane(const StatsLane& lane) {
  for (const OpField& f : op_fields()) ops_.*f.member += lane.ops.*f.member;
  for (std::size_t k = 0; k < kTrafficKinds; ++k) {
    const auto kind = static_cast<TrafficKind>(k);
    traffic_.add(kind, lane.traffic.get(kind));
  }
}

Cycle SimStats::exec_cycles() const {
  Cycle max_cycles = 0;
  for (const auto& s : stalls_) max_cycles = std::max(max_cycles, s.total());
  return max_cycles;
}

Cycle SimStats::total_stall(StallKind k) const {
  Cycle t = 0;
  for (const auto& s : stalls_) t += s.get(k);
  return t;
}

void SimStats::clear() {
  for (auto& s : stalls_) s.clear();
  traffic_.clear();
  ops_ = OpCounts{};
  shard_exec_ = ShardExec{};
}

}  // namespace hic
