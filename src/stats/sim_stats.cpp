#include "stats/sim_stats.hpp"

#include <algorithm>

namespace hic {

const char* to_string(StallKind k) {
  switch (k) {
    case StallKind::Rest: return "rest";
    case StallKind::InvStall: return "INV stall";
    case StallKind::WbStall: return "WB stall";
    case StallKind::LockStall: return "lock stall";
    case StallKind::BarrierStall: return "barrier stall";
    case StallKind::kCount: break;
  }
  return "?";
}

const char* to_string(TrafficKind k) {
  switch (k) {
    case TrafficKind::Linefill: return "linefill";
    case TrafficKind::Writeback: return "writeback";
    case TrafficKind::Invalidation: return "invalidation";
    case TrafficKind::Memory: return "memory";
    case TrafficKind::Sync: return "sync";
    case TrafficKind::kCount: break;
  }
  return "?";
}

Cycle SimStats::exec_cycles() const {
  Cycle max_cycles = 0;
  for (const auto& s : stalls_) max_cycles = std::max(max_cycles, s.total());
  return max_cycles;
}

Cycle SimStats::total_stall(StallKind k) const {
  Cycle t = 0;
  for (const auto& s : stalls_) t += s.get(k);
  return t;
}

void SimStats::clear() {
  for (auto& s : stalls_) s.clear();
  traffic_.clear();
  ops_ = OpCounts{};
}

}  // namespace hic
