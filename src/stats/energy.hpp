// Energy model: the paper argues traffic parity implies energy parity
// ("their different traffic gives us some idea of their different energy
// consumption", §VII-B). This module makes that proxy explicit with an
// event-energy model in the style of CACTI/McPAT small-structure numbers:
// per-access energies for each cache level, per-flit-hop link energy, and
// DRAM access energy. Absolute picojoules are placeholders at a 22nm-class
// node; the interesting output is the ratio between configurations.
#pragma once

#include <string>

#include "common/machine_config.hpp"
#include "stats/sim_stats.hpp"

namespace hic {

struct EnergyParams {
  // Per-access dynamic energy, picojoules.
  double l1_access_pj = 10.0;
  double l2_access_pj = 40.0;
  double l3_access_pj = 120.0;
  double dram_access_pj = 2000.0;
  /// Per flit per hop on the 128-bit mesh links.
  double flit_hop_pj = 3.0;
  /// Average hop count a flit travels (the traffic counters aggregate
  /// flits, not routes; the mesh diameter/3 is a standard approximation).
  double avg_hops = 3.0;
  /// Directory/coherence-controller lookup (HCC only, per invalidation).
  double dir_lookup_pj = 8.0;
  /// MEB/IEB lookup (incoherent only, per recorded/checked event).
  double buffer_lookup_pj = 0.5;
};

struct EnergyBreakdown {
  double cache_pj = 0;    ///< L1 + L2 + L3 array accesses
  double network_pj = 0;  ///< flits x hops x link energy
  double dram_pj = 0;
  double control_pj = 0;  ///< directory or MEB/IEB structures

  [[nodiscard]] double total_pj() const {
    return cache_pj + network_pj + dram_pj + control_pj;
  }
  [[nodiscard]] double total_uj() const { return total_pj() * 1e-6; }
};

/// Estimates the run's dynamic energy from its statistics.
[[nodiscard]] EnergyBreakdown estimate_energy(const SimStats& stats,
                                              const EnergyParams& p = {});

[[nodiscard]] std::string energy_report(const EnergyBreakdown& e);

}  // namespace hic
