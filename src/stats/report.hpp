// Run-report formatting: human-readable summaries and machine-readable JSON
// for a SimStats snapshot (used by the hicsim_run CLI and the benches).
//
// Both renderers draw from the same table of fields (report_fields()), so the
// text and JSON reports cannot drift apart: every counter that appears in one
// appears in the other, and the observability layer's counter registry samples
// the identical list.
#pragma once

#include <span>
#include <string>

#include "stats/sim_stats.hpp"

namespace hic {

/// Version of the stats JSON schema emitted by to_json() (and embedded in
/// trace files). Bump whenever a field is added, removed, or renamed so that
/// downstream consumers (tools/bench_host.py, tools/trace_check.py) fail
/// loudly instead of silently misparsing.
///   v2: added the oracle_stale_reads / oracle_write_races /
///       oracle_lost_updates counters to the "ops" group.
///   v3: added the resil_* recovery counters (corrected / retried /
///       quarantined / unrecoverable dispositions plus retransmit, scrubber,
///       quarantine and degradation event counts) to the "ops" group.
///   v4: added the top-level "shard" execution-provenance object (requested
///       worker threads, effective worker count, and whether an observer
///       forced the sharded engine to serialize). Host-side only: simulated
///       counters are bit-identical across scheduler modes, so equivalence
///       checks compare the JSON with this one object stripped.
///   v5: added the request-serving surface (req_issued / req_completed /
///       req_remote, nearest-rank latency percentiles req_lat_p50/p95/p99/
///       max in cycles, and req_qdepth_peak) to the "ops" group — published
///       by the serving workload family (src/apps/serve), zero elsewhere.
///   v6: added the chaos-serving surface (req_timeouts / req_retries /
///       req_hedged / req_hedge_wins / req_failed / slo_violations) and the
///       fail-stop failover counters (failover_injected / recovered /
///       degraded / failed / lost_dirty_lines / lost_puts / reacquired) to
///       the "ops" group — published under core-fail / cluster-fail
///       injection, zero elsewhere.
inline constexpr int kStatsSchemaVersion = 6;

/// One scalar counter of the report: its JSON group ("stalls",
/// "traffic_flits" or "ops"), its stable key, and how to read it.
struct ReportField {
  const char* group;
  const char* key;
  std::uint64_t (*get)(const SimStats&);
};

/// Every counter field of the report, grouped (fields of one group are
/// contiguous), in the order both renderers emit them.
[[nodiscard]] std::span<const ReportField> report_fields();

/// The stable JSON keys used for stall and traffic kinds ("wb_stall",
/// "linefill", ...). Shared with the tracer so trace span names reconcile
/// against the stats JSON by string equality.
[[nodiscard]] const char* stall_json_key(StallKind k);
[[nodiscard]] const char* traffic_json_key(TrafficKind k);

/// Multi-line human-readable summary: execution time, per-kind stall totals
/// with one-decimal per-core averages, and every counter field of
/// report_fields() grouped by section.
[[nodiscard]] std::string summarize(const SimStats& stats);

/// Single JSON object with every counter (stable key names; no trailing
/// newline). Suitable for jq-style post-processing of sweep outputs.
[[nodiscard]] std::string to_json(const SimStats& stats);

/// JSON array with one object per core: the 5-way stall-cycle breakdown.
/// Embedded in trace files so tools/trace_check.py can reconcile span totals
/// against the StallAccount to the cycle.
[[nodiscard]] std::string per_core_stalls_json(const SimStats& stats);

}  // namespace hic
