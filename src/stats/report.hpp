// Run-report formatting: human-readable summaries and machine-readable JSON
// for a SimStats snapshot (used by the hicsim_run CLI and the benches).
#pragma once

#include <string>

#include "stats/sim_stats.hpp"

namespace hic {

/// Multi-line human-readable summary: execution time, per-kind stall totals
/// (average cycles per core), traffic by category, and the op counters.
[[nodiscard]] std::string summarize(const SimStats& stats);

/// Single JSON object with every counter (stable key names; no trailing
/// newline). Suitable for jq-style post-processing of sweep outputs.
[[nodiscard]] std::string to_json(const SimStats& stats);

}  // namespace hic
