#include "stats/report.hpp"

#include <array>
#include <cstdio>
#include <sstream>

namespace hic {

const char* stall_json_key(StallKind k) {
  switch (k) {
    case StallKind::Rest: return "rest";
    case StallKind::InvStall: return "inv_stall";
    case StallKind::WbStall: return "wb_stall";
    case StallKind::LockStall: return "lock_stall";
    case StallKind::BarrierStall: return "barrier_stall";
    case StallKind::kCount: break;
  }
  return "?";
}
const char* traffic_json_key(TrafficKind k) {
  switch (k) {
    case TrafficKind::Linefill: return "linefill";
    case TrafficKind::Writeback: return "writeback";
    case TrafficKind::Invalidation: return "invalidation";
    case TrafficKind::Memory: return "memory";
    case TrafficKind::Sync: return "sync";
    case TrafficKind::kCount: break;
  }
  return "?";
}

namespace {
template <StallKind K>
std::uint64_t stall_total(const SimStats& s) {
  return s.total_stall(K);
}
template <TrafficKind K>
std::uint64_t traffic_total(const SimStats& s) {
  return s.traffic().get(K);
}
template <std::uint64_t OpCounts::* M>
std::uint64_t op(const SimStats& s) {
  return s.ops().*M;
}

// The single source of truth for every counter the report exposes. Groups
// must stay contiguous: the JSON renderer opens/closes one object per group.
constexpr std::array kFields = {
    ReportField{"stalls", "rest", stall_total<StallKind::Rest>},
    ReportField{"stalls", "inv_stall", stall_total<StallKind::InvStall>},
    ReportField{"stalls", "wb_stall", stall_total<StallKind::WbStall>},
    ReportField{"stalls", "lock_stall", stall_total<StallKind::LockStall>},
    ReportField{"stalls", "barrier_stall",
                stall_total<StallKind::BarrierStall>},
    ReportField{"traffic_flits", "linefill",
                traffic_total<TrafficKind::Linefill>},
    ReportField{"traffic_flits", "writeback",
                traffic_total<TrafficKind::Writeback>},
    ReportField{"traffic_flits", "invalidation",
                traffic_total<TrafficKind::Invalidation>},
    ReportField{"traffic_flits", "memory", traffic_total<TrafficKind::Memory>},
    ReportField{"traffic_flits", "sync", traffic_total<TrafficKind::Sync>},
    ReportField{"ops", "loads", op<&OpCounts::loads>},
    ReportField{"ops", "stores", op<&OpCounts::stores>},
    ReportField{"ops", "l1_hits", op<&OpCounts::l1_hits>},
    ReportField{"ops", "l1_misses", op<&OpCounts::l1_misses>},
    ReportField{"ops", "l2_hits", op<&OpCounts::l2_hits>},
    ReportField{"ops", "l2_misses", op<&OpCounts::l2_misses>},
    ReportField{"ops", "l3_hits", op<&OpCounts::l3_hits>},
    ReportField{"ops", "l3_misses", op<&OpCounts::l3_misses>},
    ReportField{"ops", "wb_ops", op<&OpCounts::wb_ops>},
    ReportField{"ops", "inv_ops", op<&OpCounts::inv_ops>},
    ReportField{"ops", "lines_written_back", op<&OpCounts::lines_written_back>},
    ReportField{"ops", "lines_invalidated", op<&OpCounts::lines_invalidated>},
    ReportField{"ops", "words_written_back", op<&OpCounts::words_written_back>},
    ReportField{"ops", "global_wb_lines", op<&OpCounts::global_wb_lines>},
    ReportField{"ops", "global_inv_lines", op<&OpCounts::global_inv_lines>},
    ReportField{"ops", "adaptive_local_wb", op<&OpCounts::adaptive_local_wb>},
    ReportField{"ops", "adaptive_global_wb", op<&OpCounts::adaptive_global_wb>},
    ReportField{"ops", "adaptive_local_inv", op<&OpCounts::adaptive_local_inv>},
    ReportField{"ops", "adaptive_global_inv",
                op<&OpCounts::adaptive_global_inv>},
    ReportField{"ops", "meb_wbs", op<&OpCounts::meb_wbs>},
    ReportField{"ops", "meb_overflows", op<&OpCounts::meb_overflows>},
    ReportField{"ops", "ieb_refreshes", op<&OpCounts::ieb_refreshes>},
    ReportField{"ops", "ieb_evictions", op<&OpCounts::ieb_evictions>},
    ReportField{"ops", "dir_invalidations_sent",
                op<&OpCounts::dir_invalidations_sent>},
    ReportField{"ops", "stale_word_reads", op<&OpCounts::stale_word_reads>},
    ReportField{"ops", "injected_faults", op<&OpCounts::injected_faults>},
    ReportField{"ops", "detected_faults", op<&OpCounts::detected_faults>},
    ReportField{"ops", "tolerated_faults", op<&OpCounts::tolerated_faults>},
    ReportField{"ops", "oracle_stale_reads", op<&OpCounts::oracle_stale_reads>},
    ReportField{"ops", "oracle_write_races", op<&OpCounts::oracle_write_races>},
    ReportField{"ops", "oracle_lost_updates",
                op<&OpCounts::oracle_lost_updates>},
    ReportField{"ops", "anno_barriers", op<&OpCounts::anno_barriers>},
    ReportField{"ops", "anno_critical", op<&OpCounts::anno_critical>},
    ReportField{"ops", "anno_flag", op<&OpCounts::anno_flag>},
    ReportField{"ops", "anno_occ", op<&OpCounts::anno_occ>},
    ReportField{"ops", "anno_racy", op<&OpCounts::anno_racy>},
    ReportField{"ops", "resil_corrected", op<&OpCounts::resil_corrected>},
    ReportField{"ops", "resil_retried", op<&OpCounts::resil_retried>},
    ReportField{"ops", "resil_quarantined", op<&OpCounts::resil_quarantined>},
    ReportField{"ops", "resil_unrecoverable",
                op<&OpCounts::resil_unrecoverable>},
    ReportField{"ops", "resil_retransmits", op<&OpCounts::resil_retransmits>},
    ReportField{"ops", "resil_dup_suppressed",
                op<&OpCounts::resil_dup_suppressed>},
    ReportField{"ops", "resil_scrub_passes", op<&OpCounts::resil_scrub_passes>},
    ReportField{"ops", "resil_scrub_corrections",
                op<&OpCounts::resil_scrub_corrections>},
    ReportField{"ops", "resil_quarantined_ways",
                op<&OpCounts::resil_quarantined_ways>},
    ReportField{"ops", "resil_degraded_blocks",
                op<&OpCounts::resil_degraded_blocks>},
    ReportField{"ops", "req_issued", op<&OpCounts::req_issued>},
    ReportField{"ops", "req_completed", op<&OpCounts::req_completed>},
    ReportField{"ops", "req_remote", op<&OpCounts::req_remote>},
    ReportField{"ops", "req_lat_p50", op<&OpCounts::req_lat_p50>},
    ReportField{"ops", "req_lat_p95", op<&OpCounts::req_lat_p95>},
    ReportField{"ops", "req_lat_p99", op<&OpCounts::req_lat_p99>},
    ReportField{"ops", "req_lat_max", op<&OpCounts::req_lat_max>},
    ReportField{"ops", "req_qdepth_peak", op<&OpCounts::req_qdepth_peak>},
    ReportField{"ops", "req_timeouts", op<&OpCounts::req_timeouts>},
    ReportField{"ops", "req_retries", op<&OpCounts::req_retries>},
    ReportField{"ops", "req_hedged", op<&OpCounts::req_hedged>},
    ReportField{"ops", "req_hedge_wins", op<&OpCounts::req_hedge_wins>},
    ReportField{"ops", "req_failed", op<&OpCounts::req_failed>},
    ReportField{"ops", "slo_violations", op<&OpCounts::slo_violations>},
    ReportField{"ops", "failover_injected", op<&OpCounts::failover_injected>},
    ReportField{"ops", "failover_recovered",
                op<&OpCounts::failover_recovered>},
    ReportField{"ops", "failover_degraded", op<&OpCounts::failover_degraded>},
    ReportField{"ops", "failover_failed", op<&OpCounts::failover_failed>},
    ReportField{"ops", "failover_lost_dirty_lines",
                op<&OpCounts::failover_lost_dirty_lines>},
    ReportField{"ops", "failover_lost_puts",
                op<&OpCounts::failover_lost_puts>},
    ReportField{"ops", "failover_reacquired",
                op<&OpCounts::failover_reacquired>},
};
}  // namespace

std::span<const ReportField> report_fields() { return kFields; }

std::string summarize(const SimStats& stats) {
  std::ostringstream os;
  const int cores = stats.num_cores();
  os << "execution time: " << stats.exec_cycles() << " cycles (" << cores
     << " cores)\n";
  os << "schema_version: " << kStatsSchemaVersion << '\n';
  os << "exec_cycles: " << stats.exec_cycles() << '\n';
  os << "num_cores: " << cores << '\n';
  const ShardExec& se = stats.shard_exec();
  if (se.requested > 0) {
    os << "sharding: " << se.workers << " worker"
       << (se.workers == 1 ? "" : "s") << " (" << se.requested
       << " requested), "
       << (se.serialized ? "serialized by an observer" : "overlapped")
       << '\n';
  }
  const char* group = "";
  for (const ReportField& f : kFields) {
    if (std::string_view(group) != f.group) {
      group = f.group;
      os << group << ":\n";
    }
    const std::uint64_t v = f.get(stats);
    os << "  " << f.key << ": " << v;
    // Stall totals additionally get a per-core average; one decimal keeps
    // small stall classes visible instead of truncating them to 0.
    if (std::string_view(f.group) == "stalls") {
      if (cores > 0) {
        char avg[32];
        std::snprintf(avg, sizeof avg, "%.1f",
                      static_cast<double>(v) / static_cast<double>(cores));
        os << " (avg " << avg << "/core)";
      } else {
        os << " (avg n/a: 0 cores)";
      }
    }
    os << '\n';
  }
  const OpCounts& o = stats.ops();
  if (o.req_completed > 0) {
    os << "requests: " << o.req_completed << " completed (" << o.req_remote
       << " remote), latency p50/p95/p99/max = " << o.req_lat_p50 << '/'
       << o.req_lat_p95 << '/' << o.req_lat_p99 << '/' << o.req_lat_max
       << " cycles, peak queue depth " << o.req_qdepth_peak << '\n';
  }
  if (o.req_timeouts + o.req_failed + o.req_retries + o.req_hedged +
          o.slo_violations >
      0) {
    os << "request dispositions: " << o.req_timeouts << " timed out, "
       << o.req_failed << " failed, " << o.req_retries << " retries, "
       << o.req_hedged << " hedged (" << o.req_hedge_wins << " hedge wins), "
       << o.slo_violations << " SLO violations\n";
  }
  if (o.failover_injected > 0) {
    os << "failover: " << o.failover_injected << " fail-stopped core"
       << (o.failover_injected == 1 ? "" : "s") << " -> "
       << o.failover_recovered << " recovered, " << o.failover_degraded
       << " degraded, " << o.failover_failed << " failed; lost "
       << o.failover_lost_dirty_lines << " dirty lines, "
       << o.failover_lost_puts << " un-acked puts; "
       << o.failover_reacquired << " shard ranges re-acquired\n";
  }
  if (o.injected_faults > 0) {
    os << "injected faults: " << o.injected_faults << " ("
       << o.detected_faults << " detected, " << o.tolerated_faults
       << " tolerated, "
       << o.injected_faults - o.detected_faults - o.tolerated_faults
       << " silent)\n";
    const std::uint64_t rec = o.resil_corrected + o.resil_retried +
                              o.resil_quarantined + o.resil_unrecoverable;
    if (rec > 0) {
      os << "recovery: " << o.resil_corrected << " corrected, "
         << o.resil_retried << " retried, " << o.resil_quarantined
         << " quarantined, " << o.resil_unrecoverable << " unrecoverable\n";
    }
  }
  return os.str();
}

std::string to_json(const SimStats& stats) {
  const ShardExec& se = stats.shard_exec();
  std::ostringstream os;
  os << "{\"schema_version\":" << kStatsSchemaVersion;
  os << ",\"exec_cycles\":" << stats.exec_cycles();
  os << ",\"num_cores\":" << stats.num_cores();
  os << ",\"shard\":{\"requested\":" << se.requested
     << ",\"workers\":" << se.workers << ",\"serialized\":"
     << (se.serialized ? "true" : "false") << '}';
  const char* group = "";
  bool first_in_group = true;
  for (const ReportField& f : kFields) {
    if (std::string_view(group) != f.group) {
      if (*group != '\0') os << '}';
      group = f.group;
      os << ",\"" << group << "\":{";
      first_in_group = true;
    }
    if (!first_in_group) os << ',';
    first_in_group = false;
    os << '"' << f.key << "\":" << f.get(stats);
  }
  if (*group != '\0') os << '}';
  os << '}';
  return os.str();
}

std::string per_core_stalls_json(const SimStats& stats) {
  std::ostringstream os;
  os << '[';
  for (CoreId c = 0; c < stats.num_cores(); ++c) {
    if (c > 0) os << ',';
    os << '{';
    for (std::size_t k = 0; k < kStallKinds; ++k) {
      if (k > 0) os << ',';
      const auto kind = static_cast<StallKind>(k);
      os << '"' << stall_json_key(kind) << "\":" << stats.stalls(c).get(kind);
    }
    os << '}';
  }
  os << ']';
  return os.str();
}

}  // namespace hic
