#include "stats/report.hpp"

#include <sstream>

namespace hic {

namespace {
const char* stall_key(StallKind k) {
  switch (k) {
    case StallKind::Rest: return "rest";
    case StallKind::InvStall: return "inv_stall";
    case StallKind::WbStall: return "wb_stall";
    case StallKind::LockStall: return "lock_stall";
    case StallKind::BarrierStall: return "barrier_stall";
    case StallKind::kCount: break;
  }
  return "?";
}
const char* traffic_key(TrafficKind k) {
  switch (k) {
    case TrafficKind::Linefill: return "linefill";
    case TrafficKind::Writeback: return "writeback";
    case TrafficKind::Invalidation: return "invalidation";
    case TrafficKind::Memory: return "memory";
    case TrafficKind::Sync: return "sync";
    case TrafficKind::kCount: break;
  }
  return "?";
}
}  // namespace

std::string summarize(const SimStats& stats) {
  std::ostringstream os;
  os << "execution time: " << stats.exec_cycles() << " cycles ("
     << stats.num_cores() << " cores)\n";
  os << "stall breakdown (avg cycles/core):\n";
  for (std::size_t k = 0; k < kStallKinds; ++k) {
    const auto kind = static_cast<StallKind>(k);
    os << "  " << to_string(kind) << ": "
       << stats.total_stall(kind) / static_cast<Cycle>(stats.num_cores())
       << '\n';
  }
  os << "traffic (128-bit flits):\n";
  for (std::size_t k = 0; k < kTrafficKinds; ++k) {
    const auto kind = static_cast<TrafficKind>(k);
    os << "  " << to_string(kind) << ": " << stats.traffic().get(kind)
       << '\n';
  }
  const OpCounts& o = stats.ops();
  os << "accesses: " << o.loads << " loads, " << o.stores << " stores; L1 "
     << o.l1_hits << " hits / " << o.l1_misses << " misses\n";
  os << "coherence mgmt: " << o.wb_ops << " WB ops (" << o.lines_written_back
     << " lines, " << o.words_written_back << " words), " << o.inv_ops
     << " INV ops (" << o.lines_invalidated << " lines)\n";
  os << "buffers: " << o.meb_wbs << " MEB writebacks, " << o.meb_overflows
     << " MEB overflows, " << o.ieb_refreshes << " IEB refreshes, "
     << o.ieb_evictions << " IEB evictions\n";
  os << "adaptive: WB " << o.adaptive_local_wb << " local / "
     << o.adaptive_global_wb << " global; INV " << o.adaptive_local_inv
     << " local / " << o.adaptive_global_inv << " global\n";
  os << "stale word reads observed: " << o.stale_word_reads << '\n';
  if (o.injected_faults > 0) {
    os << "injected faults: " << o.injected_faults << " ("
       << o.detected_faults << " detected, " << o.tolerated_faults
       << " tolerated, "
       << o.injected_faults - o.detected_faults - o.tolerated_faults
       << " silent)\n";
  }
  return os.str();
}

std::string to_json(const SimStats& stats) {
  std::ostringstream os;
  os << "{";
  os << "\"exec_cycles\":" << stats.exec_cycles();
  os << ",\"num_cores\":" << stats.num_cores();
  os << ",\"stalls\":{";
  for (std::size_t k = 0; k < kStallKinds; ++k) {
    if (k > 0) os << ',';
    const auto kind = static_cast<StallKind>(k);
    os << '"' << stall_key(kind) << "\":" << stats.total_stall(kind);
  }
  os << "},\"traffic_flits\":{";
  for (std::size_t k = 0; k < kTrafficKinds; ++k) {
    if (k > 0) os << ',';
    const auto kind = static_cast<TrafficKind>(k);
    os << '"' << traffic_key(kind) << "\":" << stats.traffic().get(kind);
  }
  const OpCounts& o = stats.ops();
  os << "},\"ops\":{"
     << "\"loads\":" << o.loads << ",\"stores\":" << o.stores
     << ",\"l1_hits\":" << o.l1_hits << ",\"l1_misses\":" << o.l1_misses
     << ",\"l2_hits\":" << o.l2_hits << ",\"l2_misses\":" << o.l2_misses
     << ",\"l3_hits\":" << o.l3_hits << ",\"l3_misses\":" << o.l3_misses
     << ",\"wb_ops\":" << o.wb_ops << ",\"inv_ops\":" << o.inv_ops
     << ",\"lines_written_back\":" << o.lines_written_back
     << ",\"lines_invalidated\":" << o.lines_invalidated
     << ",\"words_written_back\":" << o.words_written_back
     << ",\"global_wb_lines\":" << o.global_wb_lines
     << ",\"global_inv_lines\":" << o.global_inv_lines
     << ",\"adaptive_local_wb\":" << o.adaptive_local_wb
     << ",\"adaptive_global_wb\":" << o.adaptive_global_wb
     << ",\"adaptive_local_inv\":" << o.adaptive_local_inv
     << ",\"adaptive_global_inv\":" << o.adaptive_global_inv
     << ",\"meb_wbs\":" << o.meb_wbs
     << ",\"meb_overflows\":" << o.meb_overflows
     << ",\"ieb_refreshes\":" << o.ieb_refreshes
     << ",\"ieb_evictions\":" << o.ieb_evictions
     << ",\"dir_invalidations_sent\":" << o.dir_invalidations_sent
     << ",\"stale_word_reads\":" << o.stale_word_reads
     << ",\"injected_faults\":" << o.injected_faults
     << ",\"detected_faults\":" << o.detected_faults
     << ",\"tolerated_faults\":" << o.tolerated_faults
     << ",\"anno_barriers\":" << o.anno_barriers
     << ",\"anno_critical\":" << o.anno_critical
     << ",\"anno_flag\":" << o.anno_flag << ",\"anno_occ\":" << o.anno_occ
     << ",\"anno_racy\":" << o.anno_racy << "}}";
  return os.str();
}

}  // namespace hic
