#include "stats/text_table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace hic {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HIC_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  HIC_CHECK_MSG(cells.size() == header_.size(),
                "row arity " << cells.size() << " != header arity "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (v * 100.0) << '%';
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << "  ";
      if (i == 0) {
        os << std::left << std::setw(static_cast<int>(width[i])) << row[i];
      } else {
        os << std::right << std::setw(static_cast<int>(width[i])) << row[i];
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace hic
