// Shared aggregation library for the paper's figures and tables.
//
// One simulation point produces a PointStats (the counters the evaluation
// plots); the render_* functions reduce sets of points into the paper's
// figures/tables as printable strings. Both consumers — the serial bench
// binaries under bench/ and the hicsim_campaign aggregator — call these
// exact functions, so their outputs are byte-identical by construction and
// the normalization logic cannot drift between them.
//
// PointStats also round-trips through a single-line JSON interchange form
// (point_to_json / point_from_json): the campaign's result cache and journal
// store that form, and the keys come from the same tables the stats report
// uses (stall_json_key / traffic_json_key / op_fields), so a counter renamed
// in one place fails loudly everywhere.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "stats/sim_stats.hpp"
#include "stats/text_table.hpp"

namespace hic::agg {

/// Everything a single (app, config) simulation contributes to aggregation.
struct PointStats {
  std::string app;
  std::string config;  ///< Table II label ("HCC", "B+M+I", "Addr+L", ...)
  /// Table I classification, captured from the workload at run time so the
  /// aggregator needs no access to the workload registry.
  std::string declared_main;
  std::string declared_other;
  /// Label for sweep summaries: the machine-config digest, optionally
  /// prefixed by the sweep-axis values that produced this point.
  std::string machine;
  int threads = 0;
  int num_cores = 0;
  bool verified = true;
  Cycle exec_cycles = 0;
  Cycle stall[kStallKinds] = {};
  std::uint64_t traffic[kTrafficKinds] = {};
  OpCounts ops;
};

/// Captures a finished run's counters into a PointStats.
[[nodiscard]] PointStats point_from_stats(std::string app, std::string config,
                                          int threads, const SimStats& stats);

/// Single-line JSON interchange form (stable keys, schema-versioned).
inline constexpr int kPointSchemaVersion = 1;
[[nodiscard]] Json point_to_json(const PointStats& p);
[[nodiscard]] PointStats point_from_json(const Json& j);

/// A set of points addressable by (app, config). Sweeps may hold several
/// machine configs for one (app, config) pair; figure lookups require the
/// pair to be unique within the set (ambiguity, duplicates of the full
/// (app, config, machine) triple, and missing lookups throw CheckFailure).
class PointSet {
 public:
  void add(PointStats p);
  [[nodiscard]] const PointStats& get(const std::string& app,
                                      const std::string& config) const;
  [[nodiscard]] const std::vector<PointStats>& all() const { return points_; }

 private:
  std::vector<PointStats> points_;
};

/// The paper plots "average" bars as the arithmetic mean of the per-app
/// normalized values (no geometric mean).
[[nodiscard]] double mean(const std::vector<double>& v);

/// True when HIC_BENCH_CSV=1 (machine-readable table output).
[[nodiscard]] bool csv_env();

/// A rendered table block: render_csv() verbatim in CSV mode, render() plus
/// a trailing newline otherwise (exactly what bench_util's print_table
/// historically wrote to stdout).
[[nodiscard]] std::string table_block(const TextTable& t, bool csv);

// Full figure/table outputs, headers and footers included — each returns
// exactly the bytes the corresponding bench binary prints to stdout.
// `apps` fixes the row order (the benches pass intra/inter_workload_names()).
[[nodiscard]] std::string render_table1(const std::vector<std::string>& apps,
                                        const PointSet& ps, bool csv);
[[nodiscard]] std::string render_fig9(const std::vector<std::string>& apps,
                                      const PointSet& ps, bool csv);
[[nodiscard]] std::string render_fig10(const std::vector<std::string>& apps,
                                       const PointSet& ps, bool csv);
[[nodiscard]] std::string render_fig11(const std::vector<std::string>& apps,
                                       const PointSet& ps, bool csv);
[[nodiscard]] std::string render_fig12(const std::vector<std::string>& apps,
                                       const PointSet& ps, bool csv);
[[nodiscard]] std::string render_energy(const std::vector<std::string>& apps,
                                        const PointSet& ps, bool csv);

/// Generic sweep listing: one row per point, in insertion order (campaign
/// specs list points deterministically).
[[nodiscard]] std::string render_summary(const PointSet& ps, bool csv);

/// Request-serving comparison (campaigns/serving.json): one row per
/// (app, config) with the req_* latency surface — completed/remote counts,
/// nearest-rank p50/p95/p99/max in cycles, peak queue depth, throughput in
/// requests per million cycles — plus each config's p99 relative to the
/// app's HCC point when one is in the group. AVERAGE rows mean the p99
/// ratios per config across apps (the paper's arithmetic-mean convention).
[[nodiscard]] std::string render_serving(const std::vector<std::string>& apps,
                                         const PointSet& ps, bool csv);

/// Survivability curve source: one row per point with the recovery
/// disposition counters (resil_*) and a survived verdict — verified AND
/// nothing abandoned. Pairs with campaigns/resilience.json's fault-rate
/// sweep to plot injected faults vs surviving runs.
[[nodiscard]] std::string render_survivability(const PointSet& ps, bool csv);

/// Chaos-serving survivability (campaigns/chaos_serving.json): one row per
/// point with the fail-stop disposition counters (failover_*) and the SLO
/// surface under injection (timeouts, retries, hedges, slo_violations,
/// completed-request p99 and goodput). The machine column is the scenario
/// label (campaign group name). Rows whose point recorded no injection are
/// the healthy baseline: degraded p99/goodput are reported relative to the
/// baseline row with the same (app, config) when one exists. The accounting
/// verdict checks injected == recovered + degraded + failed on every row —
/// a failure means a victim slipped through classification, which the
/// footer calls out loudly.
[[nodiscard]] std::string render_chaos(const PointSet& ps, bool csv);

}  // namespace hic::agg
