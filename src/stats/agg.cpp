#include "stats/agg.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"
#include "stats/energy.hpp"
#include "stats/report.hpp"

namespace hic::agg {

PointStats point_from_stats(std::string app, std::string config, int threads,
                            const SimStats& stats) {
  PointStats p;
  p.app = std::move(app);
  p.config = std::move(config);
  p.threads = threads;
  p.num_cores = stats.num_cores();
  p.exec_cycles = stats.exec_cycles();
  for (std::size_t k = 0; k < kStallKinds; ++k)
    p.stall[k] = stats.total_stall(static_cast<StallKind>(k));
  for (std::size_t k = 0; k < kTrafficKinds; ++k)
    p.traffic[k] = stats.traffic().get(static_cast<TrafficKind>(k));
  p.ops = stats.ops();
  return p;
}

Json point_to_json(const PointStats& p) {
  Json j = Json::object();
  j.set("point_schema", Json::integer(kPointSchemaVersion));
  j.set("stats_schema", Json::integer(kStatsSchemaVersion));
  j.set("app", Json::string(p.app));
  j.set("config", Json::string(p.config));
  j.set("declared_main", Json::string(p.declared_main));
  j.set("declared_other", Json::string(p.declared_other));
  j.set("machine", Json::string(p.machine));
  j.set("threads", Json::integer(p.threads));
  j.set("num_cores", Json::integer(p.num_cores));
  j.set("verified", Json::boolean(p.verified));
  j.set("exec_cycles", Json::integer(static_cast<std::int64_t>(p.exec_cycles)));
  Json stalls = Json::object();
  for (std::size_t k = 0; k < kStallKinds; ++k)
    stalls.set(stall_json_key(static_cast<StallKind>(k)),
               Json::integer(static_cast<std::int64_t>(p.stall[k])));
  j.set("stalls", std::move(stalls));
  Json traffic = Json::object();
  for (std::size_t k = 0; k < kTrafficKinds; ++k)
    traffic.set(traffic_json_key(static_cast<TrafficKind>(k)),
                Json::integer(static_cast<std::int64_t>(p.traffic[k])));
  j.set("traffic_flits", std::move(traffic));
  Json ops = Json::object();
  for (const OpField& f : op_fields())
    ops.set(f.key, Json::integer(static_cast<std::int64_t>(p.ops.*f.member)));
  j.set("ops", std::move(ops));
  return j;
}

PointStats point_from_json(const Json& j) {
  HIC_CHECK_MSG(j.at("point_schema").as_i64() == kPointSchemaVersion,
                "point schema version mismatch (got "
                    << j.at("point_schema").as_i64() << ", want "
                    << kPointSchemaVersion << ")");
  HIC_CHECK_MSG(j.at("stats_schema").as_i64() == kStatsSchemaVersion,
                "stats schema version mismatch (got "
                    << j.at("stats_schema").as_i64() << ", want "
                    << kStatsSchemaVersion << ")");
  PointStats p;
  p.app = j.at("app").as_string();
  p.config = j.at("config").as_string();
  p.declared_main = j.at("declared_main").as_string();
  p.declared_other = j.at("declared_other").as_string();
  p.machine = j.at("machine").as_string();
  p.threads = static_cast<int>(j.at("threads").as_i64());
  p.num_cores = static_cast<int>(j.at("num_cores").as_i64());
  p.verified = j.at("verified").as_bool();
  p.exec_cycles = j.at("exec_cycles").as_u64();
  const Json& stalls = j.at("stalls");
  for (std::size_t k = 0; k < kStallKinds; ++k)
    p.stall[k] = stalls.at(stall_json_key(static_cast<StallKind>(k))).as_u64();
  const Json& traffic = j.at("traffic_flits");
  for (std::size_t k = 0; k < kTrafficKinds; ++k)
    p.traffic[k] =
        traffic.at(traffic_json_key(static_cast<TrafficKind>(k))).as_u64();
  const Json& ops = j.at("ops");
  for (const OpField& f : op_fields()) p.ops.*f.member = ops.at(f.key).as_u64();
  return p;
}

void PointSet::add(PointStats p) {
  for (const PointStats& q : points_)
    HIC_CHECK_MSG(q.app != p.app || q.config != p.config ||
                      q.machine != p.machine,
                  "duplicate point (" << p.app << ", " << p.config << ", "
                                      << p.machine << ")");
  points_.push_back(std::move(p));
}

const PointStats& PointSet::get(const std::string& app,
                                const std::string& config) const {
  const PointStats* found = nullptr;
  for (const PointStats& p : points_) {
    if (p.app == app && p.config == config) {
      HIC_CHECK_MSG(found == nullptr,
                    "ambiguous point (" << app << ", " << config
                                        << "): multiple machine configs in "
                                           "one aggregate group");
      found = &p;
    }
  }
  HIC_CHECK_MSG(found != nullptr, "no result for point ("
                                      << app << ", " << config
                                      << ") — the campaign spec does not "
                                         "cover this aggregate");
  return *found;
}

double mean(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

bool csv_env() {
  const char* csv = std::getenv("HIC_BENCH_CSV");
  return csv != nullptr && csv[0] == '1';
}

std::string table_block(const TextTable& t, bool csv) {
  return csv ? t.render_csv() : t.render() + "\n";
}

std::string render_table1(const std::vector<std::string>& apps,
                          const PointSet& ps, bool csv) {
  std::string out = "== Paper Table I: communication patterns (intra-block) ==\n\n";
  TextTable table({"app", "declared main", "declared other", "barriers",
                   "criticals", "flags", "occ", "racy"});
  for (const auto& app : apps) {
    const PointStats& p = ps.get(app, "Base");
    table.add_row({app, p.declared_main, p.declared_other,
                   std::to_string(p.ops.anno_barriers),
                   std::to_string(p.ops.anno_critical),
                   std::to_string(p.ops.anno_flag),
                   std::to_string(p.ops.anno_occ),
                   std::to_string(p.ops.anno_racy)});
  }
  out += table_block(table, csv);
  out +=
      "Paper Table I: FFT/LU barrier; Cholesky outside-critical (+barrier,\n"
      "critical, flag); Barnes barrier+outside-critical (+critical);\n"
      "Raytrace critical (+barrier, data race); Volrend barrier+outside-\n"
      "critical; Ocean and Water barrier+critical.\n";
  return out;
}

std::string render_fig9(const std::vector<std::string>& apps,
                        const PointSet& ps, bool csv) {
  static const char* kConfigs[] = {"HCC", "Base", "B+M", "B+I", "B+M+I"};
  std::string out =
      "== Paper Figure 9: intra-block normalized execution time ==\n"
      "(each cell: total normalized to HCC; breakdown rows below)\n\n";
  TextTable table({"app", "HCC", "Base", "B+M", "B+I", "B+M+I"});
  std::vector<std::vector<double>> norms(std::size(kConfigs));

  for (const auto& app : apps) {
    std::vector<const PointStats*> snaps;
    for (const char* c : kConfigs) snaps.push_back(&ps.get(app, c));
    const double hcc = static_cast<double>(snaps[0]->exec_cycles);

    std::vector<std::string> row{app};
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      const double n = static_cast<double>(snaps[i]->exec_cycles) / hcc;
      norms[i].push_back(n);
      row.push_back(TextTable::num(n));
    }
    table.add_row(std::move(row));

    // Stall breakdown per configuration, normalized to HCC exec time.
    for (std::size_t k = 0; k < kStallKinds; ++k) {
      std::vector<std::string> brow{"  " + std::string(to_string(
                                        static_cast<StallKind>(k)))};
      for (const PointStats* s : snaps) {
        // Average stall cycles per core, over HCC exec time.
        const double per_core = static_cast<double>(s->stall[k]) / 16.0 / hcc;
        brow.push_back(TextTable::num(per_core));
      }
      table.add_row(std::move(brow));
    }
  }

  std::vector<std::string> avg{"AVERAGE"};
  for (auto& v : norms) avg.push_back(TextTable::num(mean(v)));
  table.add_row(std::move(avg));

  out += table_block(table, csv);
  out += "Paper: Base avg ~1.20x HCC, B+M close to HCC (Raytrace high),\n"
         "B+I ~Base, B+M+I avg ~1.02x HCC.\n";
  return out;
}

std::string render_fig10(const std::vector<std::string>& apps,
                         const PointSet& ps, bool csv) {
  std::string out = "== Paper Figure 10: intra-block traffic, B+M+I vs HCC ==\n\n";
  TextTable table({"app", "config", "linefill", "writeback", "inval",
                   "memory", "total(norm)"});
  std::vector<double> norms;

  for (const auto& app : apps) {
    const PointStats& hcc = ps.get(app, "HCC");
    const PointStats& bmi = ps.get(app, "B+M+I");
    const auto total = [](const PointStats& s) {
      return static_cast<double>(
          s.traffic[static_cast<int>(TrafficKind::Linefill)] +
          s.traffic[static_cast<int>(TrafficKind::Writeback)] +
          s.traffic[static_cast<int>(TrafficKind::Invalidation)] +
          s.traffic[static_cast<int>(TrafficKind::Memory)]);
    };
    const double denom = total(hcc);
    for (const PointStats* s : {&hcc, &bmi}) {
      const double n = total(*s) / denom;
      table.add_row(
          {app, s->config,
           TextTable::num(
               s->traffic[static_cast<int>(TrafficKind::Linefill)] / denom),
           TextTable::num(
               s->traffic[static_cast<int>(TrafficKind::Writeback)] / denom),
           TextTable::num(
               s->traffic[static_cast<int>(TrafficKind::Invalidation)] /
               denom),
           TextTable::num(
               s->traffic[static_cast<int>(TrafficKind::Memory)] / denom),
           TextTable::num(n)});
      if (s == &bmi) norms.push_back(n);
    }
  }
  table.add_row({"AVERAGE", "B+M+I", "", "", "", "",
                 TextTable::num(mean(norms))});
  out += table_block(table, csv);
  out += "Paper: B+M+I averages ~0.96x HCC traffic, with zero\n"
         "invalidation flits and dirty-word-only writebacks.\n";
  return out;
}

std::string render_fig11(const std::vector<std::string>& apps,
                         const PointSet& ps, bool csv) {
  std::string out =
      "== Paper Figure 11: global WB/INV counts, Addr+L vs Addr ==\n\n";
  TextTable table({"app", "globalWB Addr", "globalWB Addr+L", "WB norm",
                   "globalINV Addr", "globalINV Addr+L", "INV norm"});

  for (const auto& app : apps) {
    const PointStats& addr = ps.get(app, "Addr");
    const PointStats& addl = ps.get(app, "Addr+L");
    const auto norm = [](std::uint64_t a, std::uint64_t b) {
      return a == 0 ? (b == 0 ? 1.0 : 0.0)
                    : static_cast<double>(b) / static_cast<double>(a);
    };
    table.add_row({app, std::to_string(addr.ops.global_wb_lines),
                   std::to_string(addl.ops.global_wb_lines),
                   TextTable::num(norm(addr.ops.global_wb_lines,
                                       addl.ops.global_wb_lines)),
                   std::to_string(addr.ops.global_inv_lines),
                   std::to_string(addl.ops.global_inv_lines),
                   TextTable::num(norm(addr.ops.global_inv_lines,
                                       addl.ops.global_inv_lines))});
  }
  out += table_block(table, csv);
  out +=
      "Paper: Jacobi ~0.25 (both), CG INV ~0.78 with WB ~1.0, EP/IS ~1.0.\n"
      "Counts are lines actually written back to L3 / invalidated from L2\n"
      "by explicit WB/INV instructions.\n";
  return out;
}

std::string render_fig12(const std::vector<std::string>& apps,
                         const PointSet& ps, bool csv) {
  static const char* kConfigs[] = {"HCC", "Base", "Addr", "Addr+L"};
  std::string out =
      "== Paper Figure 12: inter-block normalized execution time ==\n\n";
  TextTable table({"app", "HCC", "Base", "Addr", "Addr+L"});
  std::vector<std::vector<double>> norms(std::size(kConfigs));

  for (const auto& app : apps) {
    std::vector<const PointStats*> snaps;
    for (const char* c : kConfigs) snaps.push_back(&ps.get(app, c));
    const double hcc = static_cast<double>(snaps[0]->exec_cycles);
    std::vector<std::string> row{app};
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      const double n = static_cast<double>(snaps[i]->exec_cycles) / hcc;
      norms[i].push_back(n);
      row.push_back(TextTable::num(n));
    }
    table.add_row(std::move(row));

    for (std::size_t k = 0; k < kStallKinds; ++k) {
      std::vector<std::string> brow{"  " + std::string(to_string(
                                        static_cast<StallKind>(k)))};
      for (const PointStats* s : snaps)
        brow.push_back(TextTable::num(
            static_cast<double>(s->stall[k]) / 32.0 / hcc));
      table.add_row(std::move(brow));
    }
  }
  std::vector<std::string> avg{"AVERAGE"};
  for (auto& v : norms) avg.push_back(TextTable::num(mean(v)));
  table.add_row(std::move(avg));

  out += table_block(table, csv);
  out += "Paper: Addr+L ~= HCC x 1.05; Base worst (Addr+L is ~31% "
         "faster than Base);\nEP/IS flat across incoherent configs.\n";
  return out;
}

namespace {
EnergyBreakdown energy_of_point(const PointStats& p) {
  // The event-energy model reads only the op and traffic counters, which a
  // PointStats carries in full.
  SimStats s(p.num_cores);
  s.ops() = p.ops;
  for (std::size_t k = 0; k < kTrafficKinds; ++k)
    s.traffic().add(static_cast<TrafficKind>(k), p.traffic[k]);
  return estimate_energy(s);
}
}  // namespace

std::string render_energy(const std::vector<std::string>& apps,
                          const PointSet& ps, bool csv) {
  std::string out = "== Energy companion to Figure 10 (event-energy model) ==\n\n";
  TextTable table({"app", "HCC uJ", "B+M+I uJ", "ratio", "cache", "net",
                   "dram", "ctrl"});
  std::vector<double> ratios;
  for (const auto& app : apps) {
    const EnergyBreakdown hcc = energy_of_point(ps.get(app, "HCC"));
    const EnergyBreakdown bmi = energy_of_point(ps.get(app, "B+M+I"));
    const double ratio = bmi.total_pj() / hcc.total_pj();
    ratios.push_back(ratio);
    table.add_row({app, TextTable::num(hcc.total_uj(), 1),
                   TextTable::num(bmi.total_uj(), 1), TextTable::num(ratio),
                   TextTable::num(bmi.cache_pj / hcc.cache_pj),
                   TextTable::num(bmi.network_pj / hcc.network_pj),
                   hcc.dram_pj > 0
                       ? TextTable::num(bmi.dram_pj / hcc.dram_pj)
                       : std::string("-"),
                   hcc.control_pj > 0
                       ? TextTable::num(bmi.control_pj / hcc.control_pj)
                       : std::string("-")});
  }
  table.add_row({"AVERAGE", "", "", TextTable::num(mean(ratios)), "", "", "",
                 ""});
  out += table_block(table, csv);
  out +=
      "Paper §VII-B: with ~4% less traffic, B+M+I \"consumes about the same\n"
      "energy as HCC\" — while needing none of the directory/coherence-\n"
      "controller hardware (the `ctrl` column collapses to the tiny MEB/IEB\n"
      "lookups).\n";
  return out;
}

std::string render_summary(const PointSet& ps, bool csv) {
  std::string out = "== Campaign points ==\n\n";
  TextTable table({"app", "config", "machine", "threads", "exec cycles",
                   "verified"});
  for (const PointStats& p : ps.all()) {
    table.add_row({p.app, p.config, p.machine, std::to_string(p.threads),
                   std::to_string(p.exec_cycles), p.verified ? "ok" : "FAIL"});
  }
  out += table_block(table, csv);
  return out;
}

std::string render_serving(const std::vector<std::string>& apps,
                           const PointSet& ps, bool csv) {
  std::string out =
      "== Serving: request latency percentiles and throughput ==\n"
      "(latencies in cycles, nearest-rank; throughput in requests per "
      "million cycles)\n\n";
  TextTable table({"app", "config", "completed", "remote", "p50", "p95",
                   "p99", "max", "qdepth", "req/Mcyc", "p99 vs HCC"});
  // Configs in first-seen order; p99-vs-HCC ratios pooled per config for
  // the AVERAGE rows.
  std::vector<std::string> config_order;
  std::vector<std::vector<double>> config_norms;
  for (const std::string& app : apps) {
    const PointStats* hcc = nullptr;
    for (const PointStats& p : ps.all())
      if (p.app == app && p.config == "HCC") hcc = &p;
    for (const PointStats& p : ps.all()) {
      if (p.app != app) continue;
      const double thr =
          p.exec_cycles > 0
              ? static_cast<double>(p.ops.req_completed) * 1e6 /
                    static_cast<double>(p.exec_cycles)
              : 0.0;
      std::string ratio = "-";
      if (hcc != nullptr && hcc->ops.req_lat_p99 > 0) {
        const double n = static_cast<double>(p.ops.req_lat_p99) /
                         static_cast<double>(hcc->ops.req_lat_p99);
        ratio = TextTable::num(n);
        std::size_t ci = 0;
        while (ci < config_order.size() && config_order[ci] != p.config) ++ci;
        if (ci == config_order.size()) {
          config_order.push_back(p.config);
          config_norms.emplace_back();
        }
        config_norms[ci].push_back(n);
      }
      table.add_row({p.app, p.config, std::to_string(p.ops.req_completed),
                     std::to_string(p.ops.req_remote),
                     std::to_string(p.ops.req_lat_p50),
                     std::to_string(p.ops.req_lat_p95),
                     std::to_string(p.ops.req_lat_p99),
                     std::to_string(p.ops.req_lat_max),
                     std::to_string(p.ops.req_qdepth_peak),
                     TextTable::num(thr), ratio});
    }
  }
  for (std::size_t ci = 0; ci < config_order.size(); ++ci) {
    table.add_row({"AVERAGE", config_order[ci], "-", "-", "-", "-", "-", "-",
                   "-", "-", TextTable::num(mean(config_norms[ci]))});
  }
  out += table_block(table, csv);
  return out;
}

std::string render_survivability(const PointSet& ps, bool csv) {
  std::string out = "== Survivability (recovery under injected faults) ==\n\n";
  TextTable table({"app", "config", "machine", "injected", "corrected",
                   "retried", "quarantined", "unrecoverable", "retransmits",
                   "scrubbed", "survived"});
  std::uint64_t runs = 0;
  std::uint64_t survived_runs = 0;
  for (const PointStats& p : ps.all()) {
    // A point "survives" when the workload still verifies and the recovery
    // layer abandoned nothing — every injected fault was actively absorbed.
    const bool survived = p.verified && p.ops.resil_unrecoverable == 0;
    ++runs;
    if (survived) ++survived_runs;
    table.add_row({p.app, p.config, p.machine,
                   std::to_string(p.ops.injected_faults),
                   std::to_string(p.ops.resil_corrected),
                   std::to_string(p.ops.resil_retried),
                   std::to_string(p.ops.resil_quarantined),
                   std::to_string(p.ops.resil_unrecoverable),
                   std::to_string(p.ops.resil_retransmits),
                   std::to_string(p.ops.resil_scrub_corrections),
                   survived ? "yes" : "NO"});
  }
  out += table_block(table, csv);
  if (!csv) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "survived %llu/%llu points\n",
                  static_cast<unsigned long long>(survived_runs),
                  static_cast<unsigned long long>(runs));
    out += buf;
  }
  return out;
}

std::string render_chaos(const PointSet& ps, bool csv) {
  std::string out =
      "== Chaos serving: fail-stop injection and SLO accounting ==\n"
      "(scenario = campaign group; latencies in cycles over completed "
      "requests only)\n\n";

  // Disposition: every injected failure must land in exactly one of
  // recovered / degraded / failed — the "accounted" column is the campaign's
  // never-silent invariant, checked per row.
  TextTable disp({"app", "config", "scenario", "injected", "recovered",
                  "degraded", "failed", "lost dirty", "lost puts",
                  "reacquired", "accounted"});
  std::uint64_t rows = 0, accounted_rows = 0;
  std::uint64_t injected = 0, recovered = 0, degraded = 0, failed = 0;
  for (const PointStats& p : ps.all()) {
    const OpCounts& o = p.ops;
    const bool accounted = o.failover_injected == o.failover_recovered +
                                                      o.failover_degraded +
                                                      o.failover_failed;
    ++rows;
    if (accounted) ++accounted_rows;
    injected += o.failover_injected;
    recovered += o.failover_recovered;
    degraded += o.failover_degraded;
    failed += o.failover_failed;
    disp.add_row({p.app, p.config, p.machine,
                  std::to_string(o.failover_injected),
                  std::to_string(o.failover_recovered),
                  std::to_string(o.failover_degraded),
                  std::to_string(o.failover_failed),
                  std::to_string(o.failover_lost_dirty_lines),
                  std::to_string(o.failover_lost_puts),
                  std::to_string(o.failover_reacquired),
                  accounted ? "yes" : "NO"});
  }
  if (!csv) out += "-- failure disposition --\n";
  out += table_block(disp, csv);

  // SLO surface: the degraded columns compare each injected point against
  // the healthy baseline point (failover_injected == 0) with the same
  // (app, config); "-" when the campaign ran no baseline for the pair.
  TextTable slo({"app", "config", "scenario", "completed", "timeouts",
                 "retries", "hedged", "hedge wins", "failed", "slo viol",
                 "p99", "req/Mcyc", "p99 vs healthy", "goodput vs healthy"});
  for (const PointStats& p : ps.all()) {
    const OpCounts& o = p.ops;
    const double thr =
        p.exec_cycles > 0 ? static_cast<double>(o.req_completed) * 1e6 /
                                static_cast<double>(p.exec_cycles)
                          : 0.0;
    std::string p99_ratio = "-";
    std::string thr_ratio = "-";
    if (o.failover_injected > 0) {
      const PointStats* base = nullptr;
      for (const PointStats& q : ps.all())
        if (q.app == p.app && q.config == p.config &&
            q.ops.failover_injected == 0 && base == nullptr)
          base = &q;
      if (base != nullptr) {
        if (base->ops.req_lat_p99 > 0)
          p99_ratio = TextTable::num(
              static_cast<double>(o.req_lat_p99) /
              static_cast<double>(base->ops.req_lat_p99));
        const double base_thr =
            base->exec_cycles > 0
                ? static_cast<double>(base->ops.req_completed) * 1e6 /
                      static_cast<double>(base->exec_cycles)
                : 0.0;
        if (base_thr > 0) thr_ratio = TextTable::num(thr / base_thr);
      }
    }
    slo.add_row({p.app, p.config, p.machine, std::to_string(o.req_completed),
                 std::to_string(o.req_timeouts), std::to_string(o.req_retries),
                 std::to_string(o.req_hedged),
                 std::to_string(o.req_hedge_wins),
                 std::to_string(o.req_failed),
                 std::to_string(o.slo_violations),
                 std::to_string(o.req_lat_p99), TextTable::num(thr),
                 p99_ratio, thr_ratio});
  }
  if (!csv) out += "-- SLO surface --\n";
  out += table_block(slo, csv);

  if (!csv) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "accounting: %llu injected = %llu recovered + %llu degraded "
                  "+ %llu failed — %s (%llu/%llu rows)\n",
                  static_cast<unsigned long long>(injected),
                  static_cast<unsigned long long>(recovered),
                  static_cast<unsigned long long>(degraded),
                  static_cast<unsigned long long>(failed),
                  accounted_rows == rows ? "fully accounted"
                                         : "UNACCOUNTED VICTIMS",
                  static_cast<unsigned long long>(accounted_rows),
                  static_cast<unsigned long long>(rows));
    out += buf;
  }
  return out;
}

}  // namespace hic::agg
