// Minimal fixed-width table formatting for the benchmark reports.
#pragma once

#include <string>
#include <vector>

namespace hic {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double v, int precision = 1);

  /// Renders with column alignment (first column left, rest right).
  [[nodiscard]] std::string render() const;

  /// Renders as CSV.
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hic
