// Reproduces the control/storage-overhead comparison of paper §VII-A:
// full-map hierarchical MESI directory + state bits vs the incoherent
// hierarchy's valid/dirty bits + MEB/IEB/ThreadMap, for the 4-block x
// 8-core machine. The paper reports ~102KB of savings.
#include <cstdio>

#include "hierarchy/storage_model.hpp"

int main() {
  using namespace hic;
  std::printf("== Paper §VII-A: control and storage overhead ==\n\n");

  const MachineConfig inter = MachineConfig::inter_block();
  const StorageBreakdown b = compute_storage_overhead(inter);
  std::printf("Machine: %d blocks x %d cores\n\n", inter.blocks,
              inter.cores_per_block);
  std::printf("%s\n", b.report().c_str());

  const MachineConfig intra = MachineConfig::intra_block();
  const StorageBreakdown bi = compute_storage_overhead(intra);
  std::printf("For reference, the single-block 16-core machine:\n%s\n",
              bi.report().c_str());
  return 0;
}
