// Reproduces the control/storage-overhead comparison of paper §VII-A:
// full-map hierarchical MESI directory + state bits vs the incoherent
// hierarchy's valid/dirty bits + MEB/IEB/ThreadMap, for the 4-block x
// 8-core machine. The paper reports ~102KB of savings.
//
// The rendering lives in exp/aggregator.hpp, shared with hicsim_campaign's
// "storage" aggregate kind.
#include <cstdio>

#include "exp/aggregator.hpp"

int main() {
  std::fputs(hic::exp::render_storage_overhead().c_str(), stdout);
  return 0;
}
