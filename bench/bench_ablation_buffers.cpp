// Ablation: MEB and IEB sizing at application level — the design points
// behind Table III's 16-entry MEB and 4-entry IEB. Runs the two most
// lock-sensitive applications under B+M+I while sweeping one buffer size.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

namespace {

RunSnapshot run_sized(const std::string& app, int meb, int ieb) {
  auto w = make_workload(app);
  MachineConfig mc = MachineConfig::intra_block();
  mc.meb_entries = meb;
  mc.ieb_entries = ieb;
  Machine m(mc, Config::BaseMebIeb);
  RunSnapshot s;
  s.app = app;
  s.exec_cycles = run_workload(*w, m, mc.total_cores());
  for (std::size_t k = 0; k < kStallKinds; ++k)
    s.stall[k] = m.stats().total_stall(static_cast<StallKind>(k));
  s.ops = m.stats().ops();
  const WorkloadResult r = w->verify(m);
  if (!r.ok)
    std::fprintf(stderr, "WARNING: %s failed verification: %s\n",
                 app.c_str(), r.detail.c_str());
  return s;
}

}  // namespace

int main() {
  std::printf("== Ablation: MEB size (IEB fixed at 4) ==\n\n");
  TextTable meb_table({"app", "MEB entries", "cycles", "MEB WBs",
                       "overflows", "WB stall/core"});
  for (const char* app : {"raytrace", "water-nsq", "cholesky"}) {
    for (int meb : {2, 4, 8, 16, 32, 64}) {
      const RunSnapshot s = run_sized(app, meb, 4);
      meb_table.add_row(
          {app, std::to_string(meb), std::to_string(s.exec_cycles),
           std::to_string(s.ops.meb_wbs), std::to_string(s.ops.meb_overflows),
           std::to_string(
               s.stall[static_cast<int>(StallKind::WbStall)] / 16)});
    }
  }
  print_table(meb_table);

  std::printf("== Ablation: IEB size (MEB fixed at 16) ==\n\n");
  TextTable ieb_table({"app", "IEB entries", "cycles", "refreshes",
                       "evictions", "INV stall/core"});
  for (const char* app : {"raytrace", "water-nsq", "cholesky"}) {
    for (int ieb : {1, 2, 4, 8, 16}) {
      const RunSnapshot s = run_sized(app, 16, ieb);
      ieb_table.add_row(
          {app, std::to_string(ieb), std::to_string(s.exec_cycles),
           std::to_string(s.ops.ieb_refreshes),
           std::to_string(s.ops.ieb_evictions),
           std::to_string(
               s.stall[static_cast<int>(StallKind::InvStall)] / 16)});
    }
  }
  print_table(ieb_table);
  std::printf(
      "Table III's choices sit at the knees: a 16-entry MEB covers these\n"
      "critical sections without overflowing (smaller MEBs fall back to\n"
      "WB ALL), and past 4 IEB entries the eviction-driven re-invalidations\n"
      "are already gone for short critical sections.\n");
  return 0;
}
