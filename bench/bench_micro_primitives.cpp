// Microbenchmark ablations (google-benchmark): the per-primitive costs the
// paper's design choices trade against each other. These are not paper
// figures; they expose the cost model behind them:
//   - WB ALL vs the MEB-directed writeback, as a function of dirty lines
//   - INV ALL vs the IEB's lazy refreshes, as a function of reads per epoch
//   - read miss latency: incoherent vs MESI with a remote dirty owner
//   - MEB/IEB sizing sweeps (the ablation behind Table III's 16/4 entries)
#include <benchmark/benchmark.h>

#include "core/incoherent.hpp"
#include "hierarchy/mesi.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hic;

struct Fixture {
  MachineConfig mc = MachineConfig::intra_block();
  GlobalMemory gmem;
  SimStats stats{16};
  Fixture() { mc.validate(); }
};

/// Simulated-cycle cost of a WB ALL after writing `dirty_lines` lines,
/// reported as the "cycles" counter (wall time of the model code is mostly
/// irrelevant; the interesting output is the simulated cost).
void BM_WbAllCost(benchmark::State& state) {
  const auto dirty_lines = static_cast<std::uint64_t>(state.range(0));
  const bool use_meb = state.range(1) != 0;
  Fixture f;
  IncoherentOptions opts;
  opts.use_meb = use_meb;
  double cycles = 0;
  for (auto _ : state) {
    IncoherentHierarchy h(f.mc, f.gmem, f.stats, opts);
    const Addr base = f.gmem.alloc(64 * 1024, "buf");
    h.cs_enter(0);
    std::uint32_t v = 1;
    for (std::uint64_t l = 0; l < dirty_lines; ++l)
      h.write(0, base + l * 64, 4, &v);
    cycles = static_cast<double>(h.cs_exit(0));
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles"] = cycles;
}
BENCHMARK(BM_WbAllCost)
    ->ArgsProduct({{1, 4, 16, 64, 256}, {0, 1}})
    ->ArgNames({"dirty_lines", "meb"});

/// INV ALL vs IEB: simulated cost of the INV side of a critical section
/// that then reads `reads` distinct lines.
void BM_InvSideCost(benchmark::State& state) {
  const auto reads = static_cast<std::uint64_t>(state.range(0));
  const bool use_ieb = state.range(1) != 0;
  Fixture f;
  IncoherentOptions opts;
  opts.use_ieb = use_ieb;
  double cycles = 0;
  for (auto _ : state) {
    IncoherentHierarchy h(f.mc, f.gmem, f.stats, opts);
    const Addr base = f.gmem.alloc(64 * 1024, "buf");
    // Warm the cache so the INV side has something to do.
    std::uint32_t v = 0;
    for (std::uint64_t l = 0; l < reads; ++l) h.read(0, base + l * 64, 4, &v);
    Cycle c = h.cs_enter(0);
    for (std::uint64_t l = 0; l < reads; ++l) {
      c += h.read(0, base + l * 64, 4, &v).latency;
    }
    c += h.cs_exit(0);
    cycles = static_cast<double>(c);
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles"] = cycles;
}
BENCHMARK(BM_InvSideCost)
    ->ArgsProduct({{1, 2, 4, 8, 32}, {0, 1}})
    ->ArgNames({"reads", "ieb"});

/// Read-miss service latency: incoherent fetch vs MESI fetch with the line
/// modified in another core's L1 (owner forwarding).
void BM_ReadMissLatency(benchmark::State& state) {
  const bool coherent = state.range(0) != 0;
  Fixture f;
  double cycles = 0;
  for (auto _ : state) {
    std::unique_ptr<HierarchyBase> h;
    if (coherent) {
      h = std::make_unique<MesiHierarchy>(f.mc, f.gmem, f.stats);
    } else {
      h = std::make_unique<IncoherentHierarchy>(f.mc, f.gmem, f.stats);
    }
    const Addr a = f.gmem.alloc(64, "line");
    std::uint32_t v = 7;
    h->write(1, a, 4, &v);          // core 1 owns the line modified
    h->wb_range(1, {a, 4}, Level::L2);  // (no-op under MESI)
    cycles = static_cast<double>(h->read(0, a, 4, &v).latency);
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles"] = cycles;
}
BENCHMARK(BM_ReadMissLatency)->Arg(0)->Arg(1)->ArgName("mesi");

/// MEB capacity sweep: how often a 24-line critical section overflows.
void BM_MebCapacity(benchmark::State& state) {
  Fixture f;
  f.mc.meb_entries = static_cast<int>(state.range(0));
  IncoherentOptions opts;
  opts.use_meb = true;
  double cycles = 0;
  for (auto _ : state) {
    IncoherentHierarchy h(f.mc, f.gmem, f.stats, opts);
    const Addr base = f.gmem.alloc(64 * 64, "buf");
    h.cs_enter(0);
    std::uint32_t v = 1;
    for (int l = 0; l < 24; ++l) h.write(0, base + l * 64u, 4, &v);
    cycles = static_cast<double>(h.cs_exit(0));
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles"] = cycles;
  state.counters["overflows"] =
      static_cast<double>(f.stats.ops().meb_overflows);
}
BENCHMARK(BM_MebCapacity)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->ArgName("entries");

/// IEB capacity sweep: re-reads under a working set larger than the buffer.
void BM_IebCapacity(benchmark::State& state) {
  Fixture f;
  f.mc.ieb_entries = static_cast<int>(state.range(0));
  IncoherentOptions opts;
  opts.use_ieb = true;
  double cycles = 0;
  for (auto _ : state) {
    IncoherentHierarchy h(f.mc, f.gmem, f.stats, opts);
    const Addr base = f.gmem.alloc(64 * 16, "buf");
    std::uint32_t v = 0;
    for (int l = 0; l < 8; ++l) h.read(0, base + l * 64u, 4, &v);
    h.cs_enter(0);
    Cycle c = 0;
    for (int rep = 0; rep < 4; ++rep)
      for (int l = 0; l < 8; ++l)
        c += h.read(0, base + l * 64u, 4, &v).latency;
    h.cs_exit(0);
    cycles = static_cast<double>(c);
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles"] = cycles;
  state.counters["ieb_evictions"] =
      static_cast<double>(f.stats.ops().ieb_evictions);
}
BENCHMARK(BM_IebCapacity)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->ArgName("entries");

/// Host-side simulator throughput: simulated memory operations per second
/// of wall time, across the full engine path (threads, write buffers,
/// hierarchy). The figure to watch when optimizing the simulator itself.
void BM_EngineThroughput(benchmark::State& state) {
  const auto cores = static_cast<int>(state.range(0));
  std::uint64_t total_ops = 0;
  for (auto _ : state) {
    MachineConfig mc = MachineConfig::intra_block();
    GlobalMemory gmem;
    SimStats stats(mc.total_cores());
    IncoherentHierarchy h(mc, gmem, stats);
    SyncController sync(mc.total_cores());
    Engine eng(h, sync, mc.sim_slack_cycles);
    const Addr base = gmem.alloc(64 * 1024, "buf");
    constexpr int kOpsPerCore = 20000;
    std::vector<Engine::CoreBody> bodies;
    for (int c = 0; c < cores; ++c) {
      bodies.push_back([&, c](CoreServices& s) {
        std::uint32_t v = 0;
        for (int i = 0; i < kOpsPerCore; ++i) {
          const Addr a = base + ((static_cast<Addr>(c) * kOpsPerCore + i) *
                                 64) % (64 * 1024);
          if (i % 4 == 0) {
            s.store(a, 4, &v);
          } else {
            s.load(a, 4, &v);
          }
        }
      });
    }
    eng.run(std::move(bodies));
    total_ops += static_cast<std::uint64_t>(cores) * kOpsPerCore;
  }
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineThroughput)->Arg(1)->Arg(4)->Arg(16)->ArgName("cores")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
