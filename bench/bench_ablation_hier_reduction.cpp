// Ablation: the paper's suggested EP rewrite (§VII-C) — "one could re-write
// the code to have hierarchical reductions, which reduce first inside the
// block and then globally". Compares flat EP against ep-hier: execution
// time, lock stall, global writeback volume, and L3-bound traffic.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  std::printf("== Ablation: flat vs hierarchical reduction (EP) ==\n\n");
  TextTable table({"app", "config", "cycles", "lock stall/core",
                   "global WB lines", "WB flits"});
  for (Config cfg : {Config::InterBase, Config::InterAddr,
                     Config::InterAddrL, Config::InterHcc}) {
    for (const char* app : {"ep", "ep-hier"}) {
      const RunSnapshot s = run(app, cfg);
      table.add_row(
          {app, to_string(cfg),
           std::to_string(s.exec_cycles),
           std::to_string(
               s.stall[static_cast<int>(StallKind::LockStall)] / 32),
           std::to_string(s.ops.global_wb_lines + s.ops.adaptive_global_wb),
           std::to_string(
               s.traffic[static_cast<int>(TrafficKind::Writeback)])});
    }
  }
  print_table(table);
  std::printf(
      "EP is compute-bound, so cycles barely move (exactly why Figure 12's\n"
      "EP bars are flat); the hierarchical rewrite's win is communication:\n"
      "global writebacks drop because only one leader per block touches the\n"
      "global bins, and the per-block phase never leaves the L2.\n");
  return 0;
}
