// Reproduces paper Figure 10: network traffic (128-bit flits) of B+M+I
// normalized to HCC, broken into memory, linefill, writeback and
// invalidation categories.
//
// Paper headline: B+M+I carries ~4% less traffic on average; it has zero
// invalidation traffic, no false-sharing ping-pong, and word-granularity
// writebacks, but pays extra linefills for conservative INV ALLs.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  std::printf("== Paper Figure 10: intra-block traffic, B+M+I vs HCC ==\n\n");

  TextTable table({"app", "config", "linefill", "writeback", "inval",
                   "memory", "total(norm)"});
  std::vector<double> norms;

  for (const auto& app : intra_workload_names()) {
    const RunSnapshot hcc = run(app, Config::Hcc);
    const RunSnapshot bmi = run(app, Config::BaseMebIeb);
    const auto total = [](const RunSnapshot& s) {
      return static_cast<double>(
          s.traffic[static_cast<int>(TrafficKind::Linefill)] +
          s.traffic[static_cast<int>(TrafficKind::Writeback)] +
          s.traffic[static_cast<int>(TrafficKind::Invalidation)] +
          s.traffic[static_cast<int>(TrafficKind::Memory)]);
    };
    const double denom = total(hcc);
    for (const RunSnapshot* s : {&hcc, &bmi}) {
      const double n = total(*s) / denom;
      table.add_row(
          {app, to_string(s->config),
           TextTable::num(
               s->traffic[static_cast<int>(TrafficKind::Linefill)] / denom),
           TextTable::num(
               s->traffic[static_cast<int>(TrafficKind::Writeback)] / denom),
           TextTable::num(
               s->traffic[static_cast<int>(TrafficKind::Invalidation)] /
               denom),
           TextTable::num(
               s->traffic[static_cast<int>(TrafficKind::Memory)] / denom),
           TextTable::num(n)});
      if (s == &bmi) norms.push_back(n);
    }
  }
  table.add_row({"AVERAGE", "B+M+I", "", "", "", "",
                 TextTable::num(mean(norms))});
  print_table(table);
  std::printf("Paper: B+M+I averages ~0.96x HCC traffic, with zero\n"
              "invalidation flits and dirty-word-only writebacks.\n");
  return 0;
}
