// Reproduces paper Figure 10: network traffic (128-bit flits) of B+M+I
// normalized to HCC, broken into memory, linefill, writeback and
// invalidation categories.
//
// Paper headline: B+M+I carries ~4% less traffic on average; it has zero
// invalidation traffic, no false-sharing ping-pong, and word-granularity
// writebacks, but pays extra linefills for conservative INV ALLs.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  const auto apps = intra_workload_names();
  agg::PointSet ps;
  for (const auto& app : apps) {
    ps.add(run(app, Config::Hcc));
    ps.add(run(app, Config::BaseMebIeb));
  }
  std::fputs(agg::render_fig10(apps, ps, agg::csv_env()).c_str(), stdout);
  return 0;
}
