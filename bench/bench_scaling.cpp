// Extension: how the incoherent hierarchy's overhead scales with thread
// count. The paper evaluates fixed 16-core (intra) and 32-core (inter)
// machines; this sweep runs representative applications on 2..16 threads of
// the intra-block machine and reports B+M+I time normalized to HCC at the
// same thread count. Lock-bound applications concentrate their WB/INV
// overhead as contention grows; barrier-bound ones stay flat.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

namespace {

Cycle run_threads(const std::string& app, Config cfg, int threads) {
  auto w = make_workload(app);
  Machine m(MachineConfig::intra_block(), cfg);
  return run_workload(*w, m, threads);
}

}  // namespace

void sweep(Config cfg, const char* label) {
  std::printf("-- %s normalized to HCC at the same thread count --\n\n",
              label);
  TextTable table({"app", "2 threads", "4 threads", "8 threads",
                   "16 threads"});
  for (const char* app : {"fft", "ocean-cont", "raytrace", "water-nsq"}) {
    std::vector<std::string> row{app};
    for (int threads : {2, 4, 8, 16}) {
      const Cycle hcc = run_threads(app, Config::Hcc, threads);
      const Cycle inc = run_threads(app, cfg, threads);
      row.push_back(TextTable::num(static_cast<double>(inc) /
                                   static_cast<double>(hcc)));
    }
    table.add_row(std::move(row));
  }
  print_table(table);
}

int main() {
  std::printf("== Extension: overhead scaling with thread count ==\n\n");
  sweep(Config::Base, "Base");
  sweep(Config::BaseMebIeb, "B+M+I");
  std::printf(
      "Under Base the lock-heavy applications (raytrace) diverge with\n"
      "width as queue contention concentrates the per-critical-section\n"
      "WB/INV latency onto the critical path, while barrier-class\n"
      "applications stay near parity. With both buffers (B+M+I) every\n"
      "application stays at or below HCC at every width — the paper's\n"
      "headline, holding across machine sizes.\n");
  return 0;
}
