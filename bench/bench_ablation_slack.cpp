// Ablation: engine scheduling slack — how far a dispatched core may run
// past the next core's clock before yielding. Larger slack means fewer
// host-level context switches (faster simulation) at the cost of coarser
// event interleaving; this sweep quantifies the simulated-cycle drift.
#include <chrono>

#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  std::printf("== Ablation: engine scheduling slack ==\n\n");
  TextTable table({"app", "slack", "sim cycles", "drift vs 64",
                   "host ms"});
  for (const char* app : {"ocean-cont", "water-nsq", "raytrace"}) {
    double base_cycles = 0;
    for (Cycle slack : {64u, 256u, 1024u, 4096u, 16384u}) {
      auto w = make_workload(app);
      MachineConfig mc = MachineConfig::intra_block();
      mc.sim_slack_cycles = slack;
      Machine m(mc, Config::BaseMebIeb);
      const auto t0 = std::chrono::steady_clock::now();
      const Cycle cycles = run_workload(*w, m, 16);
      const auto t1 = std::chrono::steady_clock::now();
      const WorkloadResult r = w->verify(m);
      if (!r.ok)
        std::fprintf(stderr, "WARNING: %s failed at slack %llu: %s\n", app,
                     static_cast<unsigned long long>(slack),
                     r.detail.c_str());
      if (slack == 64u) base_cycles = static_cast<double>(cycles);
      const double host_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      table.add_row({app, std::to_string(slack), std::to_string(cycles),
                     TextTable::pct(static_cast<double>(cycles) /
                                        base_cycles -
                                    1.0),
                     TextTable::num(host_ms, 1)});
    }
  }
  print_table(table);
  std::printf(
      "Results stay deterministic at every slack; correctness (verification)\n"
      "holds at every slack. The default (1024) trades <~5%% cycle drift for\n"
      "an order of magnitude fewer semaphore handoffs.\n");
  return 0;
}
