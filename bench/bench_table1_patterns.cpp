// Reproduces paper Table I: the communication patterns observed in the
// intra-block applications. The declared classification comes from each
// workload; the observed columns count the annotation events the runtime
// actually executed (barrier / critical-section / flag / OCC / enforced
// data-race annotations).
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  std::printf("== Paper Table I: communication patterns (intra-block) ==\n\n");
  TextTable table({"app", "declared main", "declared other", "barriers",
                   "criticals", "flags", "occ", "racy"});

  for (const auto& app : intra_workload_names()) {
    auto w = make_workload(app);
    Machine m(MachineConfig::intra_block(), Config::Base);
    run_workload(*w, m, 16);
    const OpCounts& ops = m.stats().ops();
    table.add_row({app, w->main_patterns(), w->other_patterns(),
                   std::to_string(ops.anno_barriers),
                   std::to_string(ops.anno_critical),
                   std::to_string(ops.anno_flag),
                   std::to_string(ops.anno_occ),
                   std::to_string(ops.anno_racy)});
  }
  print_table(table);
  std::printf(
      "Paper Table I: FFT/LU barrier; Cholesky outside-critical (+barrier,\n"
      "critical, flag); Barnes barrier+outside-critical (+critical);\n"
      "Raytrace critical (+barrier, data race); Volrend barrier+outside-\n"
      "critical; Ocean and Water barrier+critical.\n");
  return 0;
}
