// Reproduces paper Table I: the communication patterns observed in the
// intra-block applications. The declared classification comes from each
// workload; the observed columns count the annotation events the runtime
// actually executed (barrier / critical-section / flag / OCC / enforced
// data-race annotations).
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  const auto apps = intra_workload_names();
  agg::PointSet ps;
  // Stock machine (staleness monitor on), matching the historical bench.
  for (const auto& app : apps)
    ps.add(run(app, Config::Base, /*staleness_monitor=*/true));
  std::fputs(agg::render_table1(apps, ps, agg::csv_env()).c_str(), stdout);
  return 0;
}
