// bench_host_perf — the host-side performance regression harness.
//
// Measures simulated-cycles-per-host-second across three representative
// workloads (two Fig. 9 intra-block apps, one Fig. 12 inter-block app) and
// writes BENCH_host_perf.json so successive commits can be compared with
// tools/bench_host.py. The simulated cycle counts in the output double as a
// determinism canary: they must never move between runs or schedulers.
//
// A fourth section times a 16-cluster machine (16 blocks x 4 cores) under
// both the direct scheduler and the sharded engine — the configuration the
// sharded mode exists for. Both entries land in the same result file, so
// the cycle-identity canary and the shard speedup are checked against each
// other by tools/bench_host.py --check-sharded.
//
//   bench_host_perf                 # 5 repeats per workload (median)
//   bench_host_perf --smoke         # 1 repeat, for CI
//   bench_host_perf --repeats 9
//   bench_host_perf --legacy-scheduler   # A/B the scheduler rewrite
//   bench_host_perf --shard-threads 8    # sharded-entry worker count
//   bench_host_perf --out my.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "apps/workload.hpp"
#include "stats/host_perf.hpp"
#include "stats/report.hpp"
#include "verify/oracle.hpp"

using namespace hic;

namespace {

struct Item {
  const char* app;
  Config cfg;
  const char* config_name;
};

// Two Fig. 9 intra-block workloads plus one Fig. 12 inter-block workload:
// together they exercise the scheduler (16 cores), the WB/INV range ops
// (jacobi's per-iteration wb_range/inv_range), and the miss path.
constexpr Item kItems[] = {
    {"ocean-cont", Config::BaseMebIeb, "B+M+I"},
    {"fft", Config::BaseMebIeb, "B+M+I"},
    {"jacobi", Config::InterAddrL, "Addr+L"},
};

// Appends host-side execution provenance to a HostPerfResult JSON object so
// tools/bench_host.py can refuse speedup claims from entries that silently
// fell back to one-quantum-at-a-time serialize mode.
std::string with_provenance(std::string entry, int workers, bool serialized) {
  entry.pop_back();  // strip the closing '}'
  entry += ",\"shard_workers\":" + std::to_string(workers) +
           ",\"shard_serialize\":";
  entry += serialized ? "true" : "false";
  entry += '}';
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 5;
  bool legacy = false;
  int shard_threads = 4;
  std::string out = "BENCH_host_perf.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      repeats = 1;
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (arg == "--legacy-scheduler") {
      legacy = true;
    } else if (arg == "--shard-threads" && i + 1 < argc) {
      shard_threads = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_host_perf [--smoke] [--repeats N] "
                   "[--legacy-scheduler] [--shard-threads N] [--out FILE]\n");
      return 1;
    }
  }
  if (repeats <= 0) repeats = 1;

  std::string json = "{\"schema_version\":" +
                     std::to_string(kStatsSchemaVersion) +
                     ",\"scheduler\":\"";
  json += legacy ? "legacy" : "direct";
  json += "\",\"repeats\":" + std::to_string(repeats) +
          ",\"host_cpus\":" +
          std::to_string(std::thread::hardware_concurrency()) +
          ",\"shard_threads\":" + std::to_string(shard_threads) +
          ",\"workloads\":{";

  bool first = true;
  for (const Item& it : kItems) {
    MachineConfig mc = is_inter_block(it.cfg) ? MachineConfig::inter_block()
                                              : MachineConfig::intra_block();
    // Timing loop: skip the per-load shadow-read + memcmp of the staleness
    // monitor (stats-only; the simulated cycles are identical either way).
    mc.staleness_monitor = false;
    mc.legacy_scheduler = legacy;
    mc.validate();

    int workers = 0;
    bool serialized = false;
    const HostPerfResult r = time_runs(repeats, [&]() -> Cycle {
      auto w = make_workload(it.app);
      Machine m(mc, it.cfg);
      const Cycle cy = run_workload(*w, m, mc.total_cores());
      workers = m.engine().effective_shards();
      serialized = m.engine().shard_serialized();
      return cy;
    });

    std::printf("%-12s %-7s %12llu cycles  %8.3f s median  %10.0f cyc/s\n",
                it.app, it.config_name,
                static_cast<unsigned long long>(r.cycles), r.median_seconds,
                r.cycles_per_second);
    if (!first) json += ',';
    first = false;
    json += "\"";
    json += it.app;
    json += '/';
    json += it.config_name;
    json += "\":";
    json += with_provenance(to_json(r), workers, serialized);
  }

  // 16-cluster section: the machine shape the sharded engine targets. The
  // direct and sharded entries share one result file so the checker can
  // assert bit-identical cycles and compute the shard speedup without a
  // second bench invocation. Skipped under --legacy-scheduler (the legacy
  // scheduler predates sharding and refuses to combine with it).
  // The oracle-armed pair measures the overlapped --verify path: the oracle
  // shadows every quantum through deferred per-quantum buffers, so sharding
  // must still buy wall-clock time with verification on.
  if (!legacy && shard_threads > 0) {
    MachineConfig mc16 = MachineConfig::inter_block();
    mc16.blocks = 16;
    mc16.cores_per_block = 4;
    mc16.staleness_monitor = false;
    mc16.validate();
    for (const bool verify : {false, true}) {
      for (const int threads : {0, shard_threads}) {
        int workers = 0;
        bool serialized = false;
        const HostPerfResult r = time_runs(repeats, [&]() -> Cycle {
          auto w = make_workload("ep");
          Machine m(mc16, Config::InterAddrL);
          CoherenceOracle oracle;
          if (verify) m.set_oracle(&oracle);
          m.set_shard_threads(threads);
          const Cycle cy = run_workload(*w, m, mc16.total_cores());
          workers = m.engine().effective_shards();
          serialized = m.engine().shard_serialized();
          return cy;
        });
        std::string name = "ep-16c/Addr+L";
        if (verify) name += "/verify";
        if (threads != 0)
          name += (verify ? "-shard" : "/shard") + std::to_string(threads);
        std::printf("%-26s %12llu cycles  %8.3f s median  %10.0f cyc/s\n",
                    name.c_str(), static_cast<unsigned long long>(r.cycles),
                    r.median_seconds, r.cycles_per_second);
        json += ",\"" + name +
                "\":" + with_provenance(to_json(r), workers, serialized);
      }
    }
  }
  json += "}}\n";

  std::ofstream f(out);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  f << json;
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
