// Reproduces paper Figure 9: normalized execution time of the intra-block
// applications on HCC, Base, B+M, B+I and B+M+I, broken down into INV
// stall, WB stall, lock stall, barrier stall, and rest. Bars are normalized
// to HCC per application.
//
// Paper headline: Base averages ~1.20x HCC; B+M+I averages ~1.02x.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  const std::vector<Config> configs = {Config::Hcc, Config::Base,
                                       Config::BaseMeb, Config::BaseIeb,
                                       Config::BaseMebIeb};

  std::printf("== Paper Figure 9: intra-block normalized execution time ==\n");
  std::printf("(each cell: total normalized to HCC; breakdown rows below)\n\n");

  TextTable table({"app", "HCC", "Base", "B+M", "B+I", "B+M+I"});
  std::vector<std::vector<double>> norms(configs.size());

  for (const auto& app : intra_workload_names()) {
    std::vector<RunSnapshot> snaps;
    snaps.reserve(configs.size());
    for (Config c : configs) snaps.push_back(run(app, c));
    const double hcc = static_cast<double>(snaps[0].exec_cycles);

    std::vector<std::string> row{app};
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const double n = static_cast<double>(snaps[i].exec_cycles) / hcc;
      norms[i].push_back(n);
      row.push_back(TextTable::num(n));
    }
    table.add_row(std::move(row));

    // Stall breakdown per configuration, normalized to HCC exec time.
    for (std::size_t k = 0; k < kStallKinds; ++k) {
      std::vector<std::string> brow{"  " + std::string(to_string(
                                        static_cast<StallKind>(k)))};
      for (const auto& s : snaps) {
        // Average stall cycles per core, over HCC exec time.
        const double per_core =
            static_cast<double>(s.stall[k]) / 16.0 / hcc;
        brow.push_back(TextTable::num(per_core));
      }
      table.add_row(std::move(brow));
    }
  }

  std::vector<std::string> avg{"AVERAGE"};
  for (auto& v : norms) avg.push_back(TextTable::num(mean(v)));
  table.add_row(std::move(avg));

  print_table(table);
  std::printf("Paper: Base avg ~1.20x HCC, B+M close to HCC (Raytrace high),\n"
              "B+I ~Base, B+M+I avg ~1.02x HCC.\n");
  return 0;
}
