// Reproduces paper Figure 9: normalized execution time of the intra-block
// applications on HCC, Base, B+M, B+I and B+M+I, broken down into INV
// stall, WB stall, lock stall, barrier stall, and rest. Bars are normalized
// to HCC per application.
//
// Paper headline: Base averages ~1.20x HCC; B+M+I averages ~1.02x.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  const std::vector<Config> configs = {Config::Hcc, Config::Base,
                                       Config::BaseMeb, Config::BaseIeb,
                                       Config::BaseMebIeb};
  const auto apps = intra_workload_names();
  agg::PointSet ps;
  for (const auto& app : apps)
    for (Config c : configs) ps.add(run(app, c));
  std::fputs(agg::render_fig9(apps, ps, agg::csv_env()).c_str(), stdout);
  return 0;
}
