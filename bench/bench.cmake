# Benchmark binaries: one per paper table/figure plus microbenchmarks.
# Declared from the top level so ${CMAKE_BINARY_DIR}/bench holds only the
# executables (the standard run loop is `for b in build/bench/*; do $b; done`).
set(HIC_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

function(hic_add_bench name)
  add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE hic_apps hic_runtime hic_compiler)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${HIC_BENCH_DIR})
endfunction()

hic_add_bench(bench_table1_patterns)
hic_add_bench(bench_storage_overhead)
hic_add_bench(bench_fig9_intra_time)
hic_add_bench(bench_fig10_intra_traffic)
hic_add_bench(bench_fig11_global_ops)
hic_add_bench(bench_fig12_inter_time)
hic_add_bench(bench_ablation_hier_reduction)
hic_add_bench(bench_ablation_buffers)
hic_add_bench(bench_ablation_slack)
hic_add_bench(bench_energy)
hic_add_bench(bench_scaling)
hic_add_bench(bench_host_perf)

# The storage bench shares its renderer with the campaign aggregator.
target_link_libraries(bench_storage_overhead PRIVATE hic_exp)

# Microbenchmarks (google-benchmark): primitive-cost ablations.
add_executable(bench_micro_primitives ${CMAKE_CURRENT_LIST_DIR}/bench_micro_primitives.cpp)
target_link_libraries(bench_micro_primitives PRIVATE hic_apps hic_runtime hic_compiler benchmark::benchmark)
set_target_properties(bench_micro_primitives PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${HIC_BENCH_DIR})
