// Shared helpers for the figure-reproduction benchmark binaries.
//
// The aggregation itself (normalization, table/figure rendering) lives in
// stats/agg.hpp and is shared with the hicsim_campaign aggregator — the
// benches produce points serially and hand them to the same render_*
// functions, so `hicsim_campaign` output is byte-identical by construction.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "stats/agg.hpp"
#include "stats/text_table.hpp"

namespace hic::bench {

/// Everything a single (app, config) simulation produces — the benches and
/// the campaign engine share this type.
using RunSnapshot = agg::PointStats;

/// Simulates `app` under `config` on the stock machine for its family and
/// captures the counters. `staleness_monitor` defaults off: the timing
/// benches report cycles/traffic/ops, never staleness counts, and skipping
/// the per-load shadow read keeps them fast (simulated cycles identical).
inline RunSnapshot run(const std::string& app, Config config,
                       bool staleness_monitor = false) {
  auto w = make_workload(app);
  MachineConfig mc = is_inter_block(config) ? MachineConfig::inter_block()
                                            : MachineConfig::intra_block();
  mc.staleness_monitor = staleness_monitor;
  Machine m(mc, config);
  run_workload(*w, m, mc.total_cores());
  RunSnapshot s = agg::point_from_stats(app, to_string(config),
                                        mc.total_cores(), m.stats());
  s.declared_main = w->main_patterns();
  s.declared_other = w->other_patterns();
  const WorkloadResult r = w->verify(m);
  s.verified = r.ok;
  if (!r.ok) {
    std::fprintf(stderr, "WARNING: %s under %s failed verification: %s\n",
                 app.c_str(), to_string(config).c_str(), r.detail.c_str());
  }
  return s;
}

using agg::mean;

/// Prints a result table; set HIC_BENCH_CSV=1 for machine-readable output.
inline void print_table(const TextTable& t) {
  std::fputs(agg::table_block(t, agg::csv_env()).c_str(), stdout);
}

}  // namespace hic::bench
