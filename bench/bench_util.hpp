// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "stats/text_table.hpp"

namespace hic::bench {

/// Everything a single (app, config) simulation produces.
struct RunSnapshot {
  std::string app;
  Config config = Config::Hcc;
  Cycle exec_cycles = 0;
  Cycle stall[kStallKinds] = {};
  std::uint64_t traffic[kTrafficKinds] = {};
  OpCounts ops;
};

inline RunSnapshot run(const std::string& app, Config config) {
  auto w = make_workload(app);
  MachineConfig mc = is_inter_block(config) ? MachineConfig::inter_block()
                                            : MachineConfig::intra_block();
  // The benches report timing/traffic/ops, never staleness counts: skip the
  // per-load shadow-read + memcmp (simulated cycles are identical).
  mc.staleness_monitor = false;
  Machine m(mc, config);
  RunSnapshot s;
  s.app = app;
  s.config = config;
  s.exec_cycles = run_workload(*w, m, mc.total_cores());
  for (std::size_t k = 0; k < kStallKinds; ++k)
    s.stall[k] = m.stats().total_stall(static_cast<StallKind>(k));
  for (std::size_t k = 0; k < kTrafficKinds; ++k)
    s.traffic[k] = m.stats().traffic().get(static_cast<TrafficKind>(k));
  s.ops = m.stats().ops();
  const WorkloadResult r = w->verify(m);
  if (!r.ok) {
    std::fprintf(stderr, "WARNING: %s under %s failed verification: %s\n",
                 app.c_str(), to_string(config).c_str(), r.detail.c_str());
  }
  return s;
}

/// Geometric-mean-free "average" bar as the paper plots it: the arithmetic
/// mean of the per-app normalized values.
inline double mean(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

/// Prints a result table; set HIC_BENCH_CSV=1 for machine-readable output.
inline void print_table(const TextTable& t) {
  const char* csv = std::getenv("HIC_BENCH_CSV");
  if (csv != nullptr && csv[0] == '1') {
    std::fputs(t.render_csv().c_str(), stdout);
  } else {
    std::printf("%s\n", t.render().c_str());
  }
}

}  // namespace hic::bench
