// Reproduces paper Figure 11: the number of global WBs (reaching the L3)
// and global INVs (clearing the L2) under Addr+L, normalized to Addr.
//
// Paper headline: Jacobi keeps only ~25% of its global WB/INVs (neighbor
// exchange becomes intra-block); CG keeps ~78% of its INVs while its WBs
// stay global (the paper's compiler writes p[] whole to L3); EP and IS see
// no reduction because their communication is reductions, which have no
// producer-consumer order.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  const auto apps = inter_workload_names();
  agg::PointSet ps;
  for (const auto& app : apps) {
    ps.add(run(app, Config::InterAddr));
    ps.add(run(app, Config::InterAddrL));
  }
  std::fputs(agg::render_fig11(apps, ps, agg::csv_env()).c_str(), stdout);
  return 0;
}
