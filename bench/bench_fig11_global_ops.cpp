// Reproduces paper Figure 11: the number of global WBs (reaching the L3)
// and global INVs (clearing the L2) under Addr+L, normalized to Addr.
//
// Paper headline: Jacobi keeps only ~25% of its global WB/INVs (neighbor
// exchange becomes intra-block); CG keeps ~78% of its INVs while its WBs
// stay global (the paper's compiler writes p[] whole to L3); EP and IS see
// no reduction because their communication is reductions, which have no
// producer-consumer order.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  std::printf(
      "== Paper Figure 11: global WB/INV counts, Addr+L vs Addr ==\n\n");

  TextTable table({"app", "globalWB Addr", "globalWB Addr+L", "WB norm",
                   "globalINV Addr", "globalINV Addr+L", "INV norm"});

  for (const auto& app : inter_workload_names()) {
    const RunSnapshot addr = run(app, Config::InterAddr);
    const RunSnapshot addl = run(app, Config::InterAddrL);
    const auto norm = [](std::uint64_t a, std::uint64_t b) {
      return a == 0 ? (b == 0 ? 1.0 : 0.0)
                    : static_cast<double>(b) / static_cast<double>(a);
    };
    table.add_row({app, std::to_string(addr.ops.global_wb_lines),
                   std::to_string(addl.ops.global_wb_lines),
                   TextTable::num(norm(addr.ops.global_wb_lines,
                                       addl.ops.global_wb_lines)),
                   std::to_string(addr.ops.global_inv_lines),
                   std::to_string(addl.ops.global_inv_lines),
                   TextTable::num(norm(addr.ops.global_inv_lines,
                                       addl.ops.global_inv_lines))});
  }
  print_table(table);
  std::printf(
      "Paper: Jacobi ~0.25 (both), CG INV ~0.78 with WB ~1.0, EP/IS ~1.0.\n"
      "Counts are lines actually written back to L3 / invalidated from L2\n"
      "by explicit WB/INV instructions.\n");
  return 0;
}
