// Energy companion to Figure 10: the paper argues B+M+I's slightly lower
// traffic means it "consumes about the same energy as HCC" (§VII-B). This
// bench runs the event-energy model over the same intra-block sweep and
// reports B+M+I's estimated dynamic energy normalized to HCC.
#include "bench_util.hpp"
#include "stats/energy.hpp"

using namespace hic;
using namespace hic::bench;

namespace {

EnergyBreakdown energy_of(const std::string& app, Config cfg) {
  auto w = make_workload(app);
  Machine m(MachineConfig::intra_block(), cfg);
  run_workload(*w, m, 16);
  return estimate_energy(m.stats());
}

}  // namespace

int main() {
  std::printf("== Energy companion to Figure 10 (event-energy model) ==\n\n");
  TextTable table({"app", "HCC uJ", "B+M+I uJ", "ratio", "cache", "net",
                   "dram", "ctrl"});
  std::vector<double> ratios;
  for (const auto& app : intra_workload_names()) {
    const EnergyBreakdown hcc = energy_of(app, Config::Hcc);
    const EnergyBreakdown bmi = energy_of(app, Config::BaseMebIeb);
    const double ratio = bmi.total_pj() / hcc.total_pj();
    ratios.push_back(ratio);
    table.add_row({app, TextTable::num(hcc.total_uj(), 1),
                   TextTable::num(bmi.total_uj(), 1), TextTable::num(ratio),
                   TextTable::num(bmi.cache_pj / hcc.cache_pj),
                   TextTable::num(bmi.network_pj / hcc.network_pj),
                   hcc.dram_pj > 0
                       ? TextTable::num(bmi.dram_pj / hcc.dram_pj)
                       : std::string("-"),
                   hcc.control_pj > 0
                       ? TextTable::num(bmi.control_pj / hcc.control_pj)
                       : std::string("-")});
  }
  table.add_row({"AVERAGE", "", "", TextTable::num(mean(ratios)), "", "", "",
                 ""});
  print_table(table);
  std::printf(
      "Paper §VII-B: with ~4%% less traffic, B+M+I \"consumes about the same\n"
      "energy as HCC\" — while needing none of the directory/coherence-\n"
      "controller hardware (the `ctrl` column collapses to the tiny MEB/IEB\n"
      "lookups).\n");
  return 0;
}
