// Energy companion to Figure 10: the paper argues B+M+I's slightly lower
// traffic means it "consumes about the same energy as HCC" (§VII-B). This
// bench runs the event-energy model over the same intra-block sweep and
// reports B+M+I's estimated dynamic energy normalized to HCC.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  const auto apps = intra_workload_names();
  agg::PointSet ps;
  // Stock machine (staleness monitor on), matching the historical bench.
  for (const auto& app : apps) {
    ps.add(run(app, Config::Hcc, /*staleness_monitor=*/true));
    ps.add(run(app, Config::BaseMebIeb, /*staleness_monitor=*/true));
  }
  std::fputs(agg::render_energy(apps, ps, agg::csv_env()).c_str(), stdout);
  return 0;
}
