// Reproduces paper Figure 12: inter-block normalized execution time on HCC,
// Base, Addr and Addr+L.
//
// Paper headline: Base is worst; Addr helps Jacobi, Addr+L further helps
// CG; reductions keep EP/IS flat across Base/Addr/Addr+L; on average Addr+L
// is ~31% faster than Base, ~5% faster than Addr, and ~5% slower than HCC.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  const std::vector<Config> configs = {Config::InterHcc, Config::InterBase,
                                       Config::InterAddr, Config::InterAddrL};

  std::printf("== Paper Figure 12: inter-block normalized execution time ==\n\n");
  TextTable table({"app", "HCC", "Base", "Addr", "Addr+L"});
  std::vector<std::vector<double>> norms(configs.size());

  for (const auto& app : inter_workload_names()) {
    std::vector<RunSnapshot> snaps;
    for (Config c : configs) snaps.push_back(run(app, c));
    const double hcc = static_cast<double>(snaps[0].exec_cycles);
    std::vector<std::string> row{app};
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const double n = static_cast<double>(snaps[i].exec_cycles) / hcc;
      norms[i].push_back(n);
      row.push_back(TextTable::num(n));
    }
    table.add_row(std::move(row));

    for (std::size_t k = 0; k < kStallKinds; ++k) {
      std::vector<std::string> brow{"  " + std::string(to_string(
                                        static_cast<StallKind>(k)))};
      for (const auto& s : snaps)
        brow.push_back(TextTable::num(
            static_cast<double>(s.stall[k]) / 32.0 / hcc));
      table.add_row(std::move(brow));
    }
  }
  std::vector<std::string> avg{"AVERAGE"};
  for (auto& v : norms) avg.push_back(TextTable::num(mean(v)));
  table.add_row(std::move(avg));

  print_table(table);
  std::printf("Paper: Addr+L ~= HCC x 1.05; Base worst (Addr+L is ~31%% "
              "faster than Base);\nEP/IS flat across incoherent configs.\n");
  return 0;
}
