// Reproduces paper Figure 12: inter-block normalized execution time on HCC,
// Base, Addr and Addr+L.
//
// Paper headline: Base is worst; Addr helps Jacobi, Addr+L further helps
// CG; reductions keep EP/IS flat across Base/Addr/Addr+L; on average Addr+L
// is ~31% faster than Base, ~5% faster than Addr, and ~5% slower than HCC.
#include "bench_util.hpp"

using namespace hic;
using namespace hic::bench;

int main() {
  const std::vector<Config> configs = {Config::InterHcc, Config::InterBase,
                                       Config::InterAddr, Config::InterAddrL};
  const auto apps = inter_workload_names();
  agg::PointSet ps;
  for (const auto& app : apps)
    for (Config c : configs) ps.add(run(app, c));
  std::fputs(agg::render_fig12(apps, ps, agg::csv_env()).c_str(), stdout);
  return 0;
}
